"""Stores: bounded FIFO queues with blocking put/get (back-pressure)."""

import pytest

from repro.simkernel import Environment, Store
from repro.simkernel.store import PeekableStore, drain


class TestBasics:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)
        with pytest.raises(ValueError):
            Store(env, capacity=2.5)

    def test_put_get_fifo(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        received = []
        def consumer(env):
            for _ in range(5):
                received.append((yield store.get()))
        proc = env.process(consumer(env))
        env.run(until=proc)
        assert received == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        def consumer(env):
            item = yield store.get()
            return (item, env.now)
        def producer(env):
            yield env.timeout(40)
            yield store.put("late")
        proc = env.process(consumer(env))
        env.process(producer(env))
        assert env.run(until=proc) == ("late", 40)

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        times = []
        def producer(env):
            for i in range(3):
                yield store.put(i)
                times.append(env.now)
        def consumer(env):
            for _ in range(3):
                yield env.timeout(100)
                yield store.get()
        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0, 100, 200]

    def test_level_and_is_full(self, env):
        store = Store(env, capacity=2)
        assert store.level == 0 and not store.is_full
        store.put("a")
        store.put("b")
        assert store.level == 2 and store.is_full

    def test_backpressure_chain(self, env):
        """A chain of bounded stores propagates stalls to the head."""
        first = Store(env, capacity=1)
        second = Store(env, capacity=1)
        put_times = []

        def producer(env):
            for i in range(4):
                yield first.put(i)
                put_times.append(env.now)

        def relay(env):
            while True:
                item = yield first.get()
                yield second.put(item)

        def slow_consumer(env):
            while True:
                yield env.timeout(100)
                yield second.get()

        env.process(producer(env))
        env.process(relay(env))
        env.process(slow_consumer(env))
        env.run(until=500)
        # Producer is throttled to roughly the consumer's rate.
        assert put_times[0] == 0
        assert put_times[-1] >= 100


class TestTryGet:
    def test_returns_item_or_none(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_rejected_with_queued_getters(self, env):
        store = Store(env)
        store.get()  # now a blocking getter is queued
        with pytest.raises(RuntimeError, match="FIFO"):
            store.try_get()

    def test_unblocks_pending_put(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        pending = store.put("b")
        assert not pending.triggered
        assert store.try_get() == "a"
        assert pending.triggered
        assert store.level == 1


class TestCancelGet:
    def test_cancel_removes_waiter(self, env):
        store = Store(env)
        get_event = store.get()
        store.cancel_get(get_event)
        store.put("x")
        env.run()
        assert not get_event.triggered
        assert store.level == 1

    def test_cancel_unknown_is_noop(self, env):
        store = Store(env)
        other = Store(env)
        event = other.get()
        store.cancel_get(event)  # no raise


class TestHelpers:
    def test_peekable(self, env):
        store = PeekableStore(env)
        assert store.peek() is None
        store.put(1)
        store.put(2)
        assert store.peek() == 1
        assert store.level == 2

    def test_drain(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        assert drain(store) == [0, 1, 2]
        assert store.level == 0
