"""Tracer, and the | / & condition operators on events."""

import pytest

from repro.simkernel import Environment
from repro.simkernel.trace import Tracer


class TestOperators:
    def test_or_fires_on_first(self, env):
        fast = env.timeout(10, value="fast")
        slow = env.timeout(100, value="slow")
        def waiter(env):
            result = yield fast | slow
            return (env.now, list(result.values()))
        proc = env.process(waiter(env))
        assert env.run(until=proc) == (10, ["fast"])

    def test_and_waits_for_both(self, env):
        a = env.timeout(10, value=1)
        b = env.timeout(100, value=2)
        def waiter(env):
            result = yield a & b
            return (env.now, sorted(result.values()))
        proc = env.process(waiter(env))
        assert env.run(until=proc) == (100, [1, 2])

    def test_chained_or(self, env):
        events = [env.timeout(delay) for delay in (30, 10, 20)]
        def waiter(env):
            yield events[0] | events[1] | events[2]
            return env.now
        proc = env.process(waiter(env))
        assert env.run(until=proc) == 10

    def test_mixed_composition(self, env):
        a, b, c = env.timeout(10), env.timeout(20), env.timeout(500)
        def waiter(env):
            yield (a & b) | c
            return env.now
        proc = env.process(waiter(env))
        assert env.run(until=proc) == 20

    def test_non_event_operand(self, env):
        with pytest.raises(TypeError):
            _ = env.timeout(1) | 42


class TestTracer:
    def run_sample(self, tracer=None):
        env = Environment()
        if tracer is not None:
            tracer.attach(env)
        def worker(env):
            yield env.timeout(10)
            yield env.timeout(20)
        env.process(worker(env), name="sample-worker")
        env.run()
        return env

    def test_records_timeouts_and_process(self):
        tracer = Tracer()
        self.run_sample(tracer)
        assert "sample-worker" in tracer.names("process")
        assert "+10" in tracer.names("timeout")
        assert len(tracer) >= 3

    def test_records_are_time_ordered(self):
        tracer = Tracer()
        self.run_sample(tracer)
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_keep_filter(self):
        tracer = Tracer(keep=lambda r: r.kind == "process")
        self.run_sample(tracer)
        assert all(r.kind == "process" for r in tracer.records)

    def test_between_query(self):
        tracer = Tracer()
        self.run_sample(tracer)
        early = tracer.between(0, 11)
        assert all(r.time <= 10 for r in early)

    def test_timeline_renders(self):
        tracer = Tracer()
        self.run_sample(tracer)
        text = tracer.timeline(limit=2)
        assert "ns" in text
        assert "more" in text or len(tracer) <= 2

    def test_detach_restores(self):
        env = Environment()
        tracer = Tracer().attach(env)
        tracer.detach(env)
        assert env.trace is None

    def test_detach_out_of_lifo_keeps_other_tracers(self):
        """Regression: detaching a non-head tracer used to clobber the
        whole chain back to its own predecessor, silently disabling every
        tracer attached after it."""
        env = Environment()
        first = Tracer().attach(env)
        middle = Tracer().attach(env)
        last = Tracer().attach(env)
        middle.detach(env)

        def worker(env):
            yield env.timeout(10)
        env.process(worker(env))
        env.run()
        assert len(first) > 0
        assert len(last) > 0
        assert len(middle) == 0

    def test_detach_any_order_empties_chain(self):
        env = Environment()
        tracers = [Tracer().attach(env) for _ in range(3)]
        tracers[1].detach(env)
        tracers[0].detach(env)
        tracers[2].detach(env)
        assert env.trace is None

    def test_detach_not_attached_raises(self):
        env = Environment()
        stranger = Tracer()
        with pytest.raises(ValueError):
            stranger.detach(env)
        Tracer().attach(env)
        with pytest.raises(ValueError):
            stranger.detach(env)

    def test_chained_tracers_both_record(self):
        env = Environment()
        inner = Tracer().attach(env)
        outer = Tracer().attach(env)

        def worker(env):
            yield env.timeout(10)
        env.process(worker(env))
        env.run()
        assert [tuple(r) for r in inner.records] == \
            [tuple(r) for r in outer.records]

    def test_chains_previous_hook(self):
        env = Environment()
        seen = []
        env.trace = lambda t, e: seen.append(t)
        tracer = Tracer().attach(env)
        env.timeout(5)
        env.run()
        assert seen == [5]
        assert len(tracer) == 1

    def test_identical_runs_trace_identically(self):
        first, second = Tracer(), Tracer()
        self.run_sample(first)
        self.run_sample(second)
        assert [tuple(r) for r in first.records] == \
            [tuple(r) for r in second.records]

    def test_fm_run_traceable(self, fm2_cluster):
        """End to end: tracing a full FM exchange names the firmware loops."""
        tracer = Tracer(keep=lambda r: r.kind == "process").attach(
            fm2_cluster.env)
        done = []

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            done.append(1)

        hid = {n.fm.register_handler(handler)
               for n in fm2_cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(64)
            yield from node.fm.send_buffer(1, hid, buf, 64)

        def receiver(node):
            while not done:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm2_cluster.run([sender, receiver])
        names = set(tracer.names("process"))
        assert any("handler" in name for name in names)
