"""Partition plans, boundary capture, and the mesh they cut along."""

from __future__ import annotations

import pytest

from repro.hardware.params import LinkParams
from repro.hardware.topology import switch_mesh
from repro.parallel.partition import PartitionPlan, edge_id
from repro.workloads.runner import MACHINES


LINK = MACHINES["ppro"].link
TRUNK = LinkParams(bandwidth=LINK.bandwidth, propagation_ns=8_000,
                   slots=LINK.slots)


def plan(n_hosts=8, n_groups=4, n_partitions=2, trunk=TRUNK):
    return PartitionPlan(switch_mesh(n_hosts, n_groups), n_partitions,
                         LINK, trunk)


class TestSwitchMesh:
    def test_shape(self):
        topo = switch_mesh(8, 4)
        assert topo.n_hosts == 8
        assert topo.n_switches == 4
        # Full mesh: every switch pair joined, hosts split 2 per switch.
        for j in range(4):
            neighbors = list(topo.switch_neighbors(j))
            switches = [n for n in neighbors if n[0] == "s"]
            hosts = [n for n in neighbors if n[0] == "h"]
            assert len(switches) == 3
            assert sorted(n[1] for n in hosts) == [2 * j, 2 * j + 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            switch_mesh(8, 0)
        with pytest.raises(ValueError):
            switch_mesh(1, 1)
        with pytest.raises(ValueError):
            switch_mesh(9, 2)   # uneven split


class TestPartitionPlan:
    def test_contiguous_switch_blocks_and_hosts_follow(self):
        p = plan(n_hosts=8, n_groups=4, n_partitions=2)
        assert [p.switch_partition(j) for j in range(4)] == [0, 0, 1, 1]
        assert p.hosts_of(0) == [0, 1, 2, 3]
        assert p.hosts_of(1) == [4, 5, 6, 7]

    def test_cut_edges_are_cross_partition_trunks_only(self):
        p = plan(n_hosts=8, n_groups=4, n_partitions=2)
        # Mesh over {0,1} x {2,3}: 4 undirected cuts = 8 directed edges;
        # intra-partition trunks (0-1, 2-3) are not cut.
        assert len(p.cut_edges) == 8
        assert edge_id(("s", 0), ("s", 2)) in p.cut_edges
        assert edge_id(("s", 0), ("s", 1)) not in p.cut_edges
        for eid, (src, dst) in p.cut_edges.items():
            assert p.owner(src) != p.owner(dst)
            assert p.dest_partition(eid) == p.owner(dst)

    def test_lookahead_is_min_cut_propagation(self):
        assert plan().lookahead_ns == TRUNK.propagation_ns
        assert plan(n_partitions=1).lookahead_ns == 0   # no cuts

    def test_fully_partitioned_mesh(self):
        p = plan(n_hosts=8, n_groups=4, n_partitions=4)
        # Every trunk is now a cut: 6 undirected = 12 directed edges.
        assert len(p.cut_edges) == 12
        assert p.hosts_of(3) == [6, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan(n_partitions=0)
        with pytest.raises(ValueError):
            plan(n_groups=4, n_partitions=3)   # 4 switches over 3 parts
        with pytest.raises(ValueError):
            # Zero-latency trunks leave no lookahead window.
            plan(trunk=LinkParams(bandwidth=LINK.bandwidth,
                                  propagation_ns=1, slots=LINK.slots))

    def test_plans_are_identical_across_derivations(self):
        a, b = plan(), plan()
        assert a.cut_edges == b.cut_edges
        assert a.lookahead_ns == b.lookahead_ns
