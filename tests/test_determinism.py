"""End-to-end determinism: identical builds produce identical histories.

The simulation must be a pure function of its inputs — no hash-order,
wall-clock, or hidden-global dependence.  A mixed workload (MPI
collectives + point-to-point + sockets) is run twice from scratch and the
full event traces are compared record for record.
"""

import numpy as np

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.obs.export import dumps_deterministic, trace_events
from repro.obs.observer import Observer
from repro.simkernel.trace import Tracer
from repro.upper.mpi import build_mpi_world
from repro.upper.sockets import SocketStack


def mixed_workload_trace(observe: bool = False):
    """Run a nontrivial 4-node workload and return its full trace."""
    cluster = Cluster(4, machine=PPRO_FM2, fm_version=2)
    tracer = Tracer().attach(cluster.env)
    if observe:
        cluster.observe()
    comms = build_mpi_world(cluster)
    outputs = {}

    def make(rank):
        comm = comms[rank]

        def program(node):
            # Collective + p2p mix.
            total = yield from comm.allreduce(
                np.arange(4, dtype=np.float64) * (rank + 1), np.add)
            right = (rank + 1) % 4
            left = (rank - 1) % 4
            data, _ = yield from comm.sendrecv(bytes([rank]) * 200, right,
                                               left)
            gathered = yield from comm.gather(data, root=0)
            outputs[rank] = (float(total.sum()), data,
                             None if gathered is None else len(gathered))
        return program

    cluster.run([make(rank) for rank in range(4)])
    return tracer, outputs, cluster.now


def socket_workload_trace():
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    tracer = Tracer().attach(cluster.env)
    stacks = [SocketStack(node) for node in cluster.nodes]
    out = {}

    def server(node):
        stacks[0].listen()
        sock = yield from stacks[0].accept()
        data = yield from sock.recv_exactly(5000)
        yield from sock.send(data[::-1])

    def client(node):
        sock = yield from stacks[1].connect(0)
        yield from sock.send(bytes(range(250)) * 20)
        out["echo"] = yield from sock.recv_exactly(5000)

    cluster.run([server, client])
    return tracer, out, cluster.now


class TestDeterminism:
    def test_mpi_workload_bit_identical(self):
        first_trace, first_out, first_now = mixed_workload_trace()
        second_trace, second_out, second_now = mixed_workload_trace()
        assert first_now == second_now
        assert first_out == second_out
        assert len(first_trace) == len(second_trace)
        assert [tuple(r) for r in first_trace.records] == \
            [tuple(r) for r in second_trace.records]

    def test_socket_workload_bit_identical(self):
        first_trace, first_out, first_now = socket_workload_trace()
        second_trace, second_out, second_now = socket_workload_trace()
        assert first_now == second_now
        assert first_out == second_out
        assert [tuple(r) for r in first_trace.records] == \
            [tuple(r) for r in second_trace.records]

    def test_observability_does_not_perturb_results(self):
        """Bit-identical event histories and outputs with obs on vs off —
        the spans/metrics layer must never consume simulated time."""
        off_trace, off_out, off_now = mixed_workload_trace(observe=False)
        on_trace, on_out, on_now = mixed_workload_trace(observe=True)
        assert off_now == on_now
        assert off_out == on_out
        assert [tuple(r) for r in off_trace.records] == \
            [tuple(r) for r in on_trace.records]

    def test_observed_trace_export_byte_identical(self):
        """Two observed runs export byte-identical Perfetto JSON."""
        def observed_bytes():
            cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
            observer = cluster.observe()
            stacks = [SocketStack(node) for node in cluster.nodes]

            def server(node):
                stacks[0].listen()
                sock = yield from stacks[0].accept()
                data = yield from sock.recv_exactly(1000)
                yield from sock.send(data[::-1])

            def client(node):
                sock = yield from stacks[1].connect(0)
                yield from sock.send(bytes(range(200)) * 5)
                yield from sock.recv_exactly(1000)

            cluster.run([server, client])
            assert isinstance(observer, Observer) and observer.spans
            return dumps_deterministic(trace_events(observer.spans))

        assert observed_bytes() == observed_bytes()

    def test_results_correct_while_traced(self):
        _trace, outputs, _now = mixed_workload_trace()
        # allreduce of arange(4)*k for k=1..4 sums to 6 * 10 = 60.
        assert all(total == 60.0 for total, _d, _g in outputs.values())
        for rank in range(4):
            left = (rank - 1) % 4
            assert outputs[rank][1] == bytes([left]) * 200
        assert outputs[0][2] == 4
        _trace2, socket_out, _n = socket_workload_trace()
        assert socket_out["echo"] == (bytes(range(250)) * 20)[::-1]
