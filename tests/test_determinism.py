"""End-to-end determinism: identical builds produce identical histories.

The simulation must be a pure function of its inputs — no hash-order,
wall-clock, or hidden-global dependence.  A mixed workload (MPI
collectives + point-to-point + sockets) is run twice from scratch and the
full event traces are compared record for record.
"""

import numpy as np

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.obs.export import dumps_deterministic, trace_events
from repro.obs.observer import Observer
from repro.simkernel.trace import Tracer
from repro.upper.mpi import build_mpi_world
from repro.upper.sockets import SocketStack


def mixed_workload_trace(observe: bool = False, fault_plan=None):
    """Run a nontrivial 4-node workload and return its full trace.

    ``fault_plan`` attaches a :class:`repro.faults.FaultInjector`; the
    injector's fault trace rides back in ``outputs["fault_events"]`` so the
    existing output comparisons also pin fault-trace determinism.
    """
    cluster = Cluster(4, machine=PPRO_FM2, fm_version=2)
    tracer = Tracer().attach(cluster.env)
    if observe:
        cluster.observe()
    injector = (cluster.inject_faults(fault_plan)
                if fault_plan is not None else None)
    comms = build_mpi_world(cluster)
    outputs = {}

    def make(rank):
        comm = comms[rank]

        def program(node):
            # Collective + p2p mix.
            total = yield from comm.allreduce(
                np.arange(4, dtype=np.float64) * (rank + 1), np.add)
            right = (rank + 1) % 4
            left = (rank - 1) % 4
            data, _ = yield from comm.sendrecv(bytes([rank]) * 200, right,
                                               left)
            gathered = yield from comm.gather(data, root=0)
            outputs[rank] = (float(total.sum()), data,
                             None if gathered is None else len(gathered))
        return program

    cluster.run([make(rank) for rank in range(4)])
    if injector is not None:
        outputs["fault_events"] = tuple(injector.events)
    return tracer, outputs, cluster.now


def socket_workload_trace():
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    tracer = Tracer().attach(cluster.env)
    stacks = [SocketStack(node) for node in cluster.nodes]
    out = {}

    def server(node):
        stacks[0].listen()
        sock = yield from stacks[0].accept()
        data = yield from sock.recv_exactly(5000)
        yield from sock.send(data[::-1])

    def client(node):
        sock = yield from stacks[1].connect(0)
        yield from sock.send(bytes(range(250)) * 20)
        out["echo"] = yield from sock.recv_exactly(5000)

    cluster.run([server, client])
    return tracer, out, cluster.now


def fm2_stream_trace(slow_path: bool = False):
    """A 2-node FM2 message stream, traced; optionally on the reference path.

    ``slow_path=True`` drives the whole run through ``step()`` /
    ``run_steps()`` (no drain-loop inlining, no event recycling) instead of
    ``env.run()``'s batched drain — the two must fire the exact same events.
    """
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    env = cluster.env
    tracer = Tracer().attach(env)
    log = []

    def handler(fm, stream, src):
        log.append((yield from stream.receive_bytes(stream.msg_bytes)))

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
    payloads = [bytes((i * 37 + m) % 256 for i in range(1500)) for m in range(10)]

    def sender(node):
        buf = node.buffer(1500)
        for payload in payloads:
            buf.write(payload)
            yield from node.fm.send_buffer(1, hid, buf, 1500)

    def receiver(node):
        while len(log) < len(payloads):
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)

    done = env.all_of([cluster.spawn(sender, 0), cluster.spawn(receiver, 1)])
    if slow_path:
        while not done.processed:
            assert env.run_steps(64) > 0, "deadlock on the reference path"
    else:
        env.run(until=done)
    assert log == payloads
    return tracer, env.now


class TestDeterminism:
    def test_mpi_workload_bit_identical(self):
        first_trace, first_out, first_now = mixed_workload_trace()
        second_trace, second_out, second_now = mixed_workload_trace()
        assert first_now == second_now
        assert first_out == second_out
        assert len(first_trace) == len(second_trace)
        assert [tuple(r) for r in first_trace.records] == \
            [tuple(r) for r in second_trace.records]

    def test_socket_workload_bit_identical(self):
        first_trace, first_out, first_now = socket_workload_trace()
        second_trace, second_out, second_now = socket_workload_trace()
        assert first_now == second_now
        assert first_out == second_out
        assert [tuple(r) for r in first_trace.records] == \
            [tuple(r) for r in second_trace.records]

    def test_fast_path_matches_reference_path(self):
        """The drain loop's fast paths (callback inlining, event pooling,
        immediate queue) fire the exact same (time, seq, priority, kind,
        name) sequence as single-stepping through ``step()``."""
        fast_trace, fast_now = fm2_stream_trace(slow_path=False)
        slow_trace, slow_now = fm2_stream_trace(slow_path=True)
        assert fast_now == slow_now
        fast = [(r.time, r.seq, r.priority, r.kind, r.name)
                for r in fast_trace.records]
        slow = [(r.time, r.seq, r.priority, r.kind, r.name)
                for r in slow_trace.records]
        assert fast == slow

    def test_observability_does_not_perturb_results(self):
        """Bit-identical event histories and outputs with obs on vs off —
        the spans/metrics layer must never consume simulated time."""
        off_trace, off_out, off_now = mixed_workload_trace(observe=False)
        on_trace, on_out, on_now = mixed_workload_trace(observe=True)
        assert off_now == on_now
        assert off_out == on_out
        assert [tuple(r) for r in off_trace.records] == \
            [tuple(r) for r in on_trace.records]

    def test_empty_fault_plan_bit_identical_to_no_injector(self):
        """An attached injector whose plan has no episodes must make no
        draws and schedule no events: bit-identical to running without one."""
        from repro.faults import FaultPlan

        base_trace, base_out, base_now = mixed_workload_trace()
        inj_trace, inj_out, inj_now = mixed_workload_trace(
            fault_plan=FaultPlan())
        assert inj_out.pop("fault_events") == ()
        assert base_now == inj_now
        assert base_out == inj_out
        assert [tuple(r) for r in base_trace.records] == \
            [tuple(r) for r in inj_trace.records]

    def test_fault_plan_bit_identical_across_runs(self):
        """Identical seeds and fault plans produce identical event
        histories, outputs, and injected fault traces — and the faults do
        perturb the run relative to the clean baseline."""
        from repro.faults import CpuSlow, FaultPlan, NicStall

        plan = FaultPlan(seed=11, episodes=(
            CpuSlow(factor=1.5, jitter_ns=200),
            NicStall(extra_ns=300, start_ns=50_000, end_ns=500_000),
        ))
        first_trace, first_out, first_now = mixed_workload_trace(
            fault_plan=plan)
        second_trace, second_out, second_now = mixed_workload_trace(
            fault_plan=plan)
        assert first_now == second_now
        assert first_out == second_out          # includes the fault trace
        assert [tuple(r) for r in first_trace.records] == \
            [tuple(r) for r in second_trace.records]
        _bt, _bo, base_now = mixed_workload_trace()
        assert first_now > base_now             # the episodes really bit

    def test_observed_trace_export_byte_identical(self):
        """Two observed runs export byte-identical Perfetto JSON."""
        def observed_bytes():
            cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
            observer = cluster.observe()
            stacks = [SocketStack(node) for node in cluster.nodes]

            def server(node):
                stacks[0].listen()
                sock = yield from stacks[0].accept()
                data = yield from sock.recv_exactly(1000)
                yield from sock.send(data[::-1])

            def client(node):
                sock = yield from stacks[1].connect(0)
                yield from sock.send(bytes(range(200)) * 5)
                yield from sock.recv_exactly(1000)

            cluster.run([server, client])
            assert isinstance(observer, Observer) and observer.spans
            return dumps_deterministic(trace_events(observer.spans))

        assert observed_bytes() == observed_bytes()

    def test_results_correct_while_traced(self):
        _trace, outputs, _now = mixed_workload_trace()
        # allreduce of arange(4)*k for k=1..4 sums to 6 * 10 = 60.
        assert all(total == 60.0 for total, _d, _g in outputs.values())
        for rank in range(4):
            left = (rank - 1) % 4
            assert outputs[rank][1] == bytes([left]) * 200
        assert outputs[0][2] == 4
        _trace2, socket_out, _n = socket_workload_trace()
        assert socket_out["echo"] == (bytes(range(250)) * 20)[::-1]
