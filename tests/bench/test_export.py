"""CSV/JSON export of figure series and the export CLI."""

import csv
import json

import pytest

from repro.bench.export import (
    FIGURE_SERIES,
    export_figure_csv,
    export_figure_json,
    main,
    sweeps_to_csv,
    sweeps_to_json,
)
from repro.bench.sweeps import SweepResult


class TestSweepsToCsv:
    def test_header_and_rows(self):
        sweeps = [SweepResult("A", [16, 32], [1.0, 2.0]),
                  SweepResult("B", [16, 32], [3.0, 4.0])]
        text = sweeps_to_csv(sweeps)
        rows = list(csv.reader(text.splitlines()))
        assert rows[0] == ["size_bytes", "A", "B"]
        assert rows[1] == ["16", "1.0000", "3.0000"]
        assert rows[2] == ["32", "2.0000", "4.0000"]

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            sweeps_to_csv([SweepResult("A", [16], [1.0]),
                           SweepResult("B", [32], [1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweeps_to_csv([])


class TestExport:
    def test_registry_covers_curve_figures(self):
        assert set(FIGURE_SERIES) == {"fig1", "fig3a", "fig3b", "fig4",
                                      "fig5", "fig6"}

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figure"):
            export_figure_csv("fig99", tmp_path)

    def test_fig1_export_roundtrip(self, tmp_path):
        path = export_figure_csv("fig1", tmp_path)
        assert path.name == "fig1.csv"
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["size_bytes", "100Mbit", "1Gbit"]
        assert len(rows) == 9
        # The 1024-byte 1 Gbit point matches the analytic anchor.
        last = rows[-1]
        assert last[0] == "1024"
        assert float(last[2]) == pytest.approx(7.69, rel=0.01)

    def test_simulated_export(self, tmp_path):
        path = export_figure_csv("fig3b", tmp_path)
        rows = list(csv.reader(path.read_text().splitlines()))
        bandwidths = [float(row[1]) for row in rows[1:]]
        assert bandwidths == sorted(bandwidths)
        assert max(bandwidths) == pytest.approx(17.6, rel=0.15)

    def test_directory_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        path = export_figure_csv("fig1", nested)
        assert path.exists()


class TestSweepsToJson:
    def test_structure_and_rounding(self):
        sweeps = [SweepResult("A", [16, 32], [1.23456, 2.0]),
                  SweepResult("B", [16, 32], [3.0, 4.0])]
        doc = json.loads(sweeps_to_json(sweeps))
        assert doc == {"sizes": [16, 32],
                       "series": {"A": [1.2346, 2.0], "B": [3.0, 4.0]}}

    def test_deterministic_bytes(self):
        sweeps = [SweepResult("B", [16], [2.0]), ]
        assert sweeps_to_json(sweeps) == sweeps_to_json(
            [SweepResult("B", [16], [2.0])])
        # Canonical form: sorted keys, no whitespace, trailing newline.
        text = sweeps_to_json(sweeps)
        assert text.endswith("\n") and ": " not in text

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            sweeps_to_json([SweepResult("A", [16], [1.0]),
                            SweepResult("B", [32], [1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweeps_to_json([])


class TestJsonExport:
    def test_fig1_json_matches_csv_data(self, tmp_path):
        json_path = export_figure_json("fig1", tmp_path)
        csv_path = export_figure_csv("fig1", tmp_path)
        doc = json.loads(json_path.read_text())
        rows = list(csv.reader(csv_path.read_text().splitlines()))
        assert doc["sizes"] == [int(r[0]) for r in rows[1:]]
        assert doc["series"]["1Gbit"] == pytest.approx(
            [float(r[2]) for r in rows[1:]])

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figure"):
            export_figure_json("fig99", tmp_path)


class TestCli:
    def test_cli_json(self, tmp_path, capsys):
        assert main(["fig1", "--format", "json", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out.strip()
        assert out.endswith("fig1.json")
        doc = json.loads((tmp_path / "fig1.json").read_text())
        assert set(doc["series"]) == {"100Mbit", "1Gbit"}

    def test_cli_csv_default(self, tmp_path, capsys):
        assert main(["fig1", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()

    def test_cli_rejects_unknown_figure(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig99", "-o", str(tmp_path)])
