"""Packet waypoints and the journey attribution tool."""

import pytest

from repro.bench.journey import Journey, packet_journey
from repro.configs import PPRO_FM2, SPARC_FM1


class TestJourneyContainer:
    def test_stages_and_total(self):
        journey = Journey([("a", 0), ("b", 100), ("c", 250)])
        assert journey.total_ns == 250
        assert journey.stages() == [("a -> b", 100), ("b -> c", 150)]
        assert journey.longest_stage() == "b -> c"

    def test_needs_two_marks(self):
        with pytest.raises(ValueError):
            Journey([("only", 0)])

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            Journey([("a", 100), ("b", 50)])

    def test_render_has_total(self):
        journey = Journey([("a", 0), ("b", 1000)])
        text = journey.render()
        assert "TOTAL" in text
        assert "1.00" in text


class TestPacketJourney:
    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_waypoints_in_canonical_order(self, machine, version):
        journey = packet_journey(machine, version)
        names = [name for name, _t in journey.marks]
        assert names[0] == "api_enter"
        assert names[-1] == "handler_done"
        # Submit before inject before wire before forward before dma.
        order = {name: i for i, name in enumerate(names)}
        assert order["nic0.submit"] < order["nic0.inject"]
        assert order["nic0.inject"] < order["s0.forward"]
        assert order["s0.forward"] < order["nic1.dma_done"]

    def test_journey_total_close_to_pingpong_latency(self):
        from repro.bench.microbench import fm_pingpong_latency_us
        from repro.cluster import Cluster
        journey = packet_journey(PPRO_FM2, 2)
        pingpong = fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), 16,
                                          iterations=10)
        # The two measure slightly different paths (the journey includes a
        # cold receiver's poll discovery; ping-pong spins hot) but must
        # agree within ~10%.
        assert journey.total_ns / 1000 == pytest.approx(pingpong, rel=0.10)

    def test_larger_message_takes_longer(self):
        small = packet_journey(PPRO_FM2, 2, msg_bytes=16)
        large = packet_journey(PPRO_FM2, 2, msg_bytes=1024)
        assert large.total_ns > small.total_ns


class TestWaypointStamps:
    def test_every_delivered_packet_carries_waypoints(self, fm2_cluster):
        seen = []

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)

        hid = {n.fm.register_handler(handler)
               for n in fm2_cluster.nodes}.pop()
        nic = fm2_cluster.node(0).nic
        original = nic.submit
        nic.submit = lambda p: (seen.append(p), original(p))[1]

        def sender(node):
            buf = node.buffer(3000)
            yield from node.fm.send_buffer(1, hid, buf, 3000)

        def receiver(node):
            while node.fm.stats_recv_messages == 0:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm2_cluster.run([sender, receiver])
        assert len(seen) == 3    # 3 packets of 1024
        for packet in seen:
            locations = [name for name, _t in packet.waypoints]
            assert "nic0.submit" in locations
            assert "nic1.dma_done" in locations
            times = [t for _n, t in packet.waypoints]
            assert times == sorted(times)
