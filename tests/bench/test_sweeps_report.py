"""Sweep containers and report rendering."""

import pytest

from repro.bench.report import (
    HeadlineRow,
    bar_table,
    curve_table,
    efficiency_table,
    headline_table,
)
from repro.bench.sweeps import SweepResult, sweep_with


@pytest.fixture
def sweep():
    return SweepResult("FM", [16, 64, 256], [2.0, 8.0, 16.0])


class TestSweepResult:
    def test_peak(self, sweep):
        assert sweep.peak_mbs == 16.0

    def test_at(self, sweep):
        assert sweep.at(64) == 8.0
        with pytest.raises(ValueError):
            sweep.at(999)

    def test_n_half_property(self, sweep):
        assert 16 <= sweep.n_half_bytes <= 256

    def test_efficiency_vs(self, sweep):
        upper = SweepResult("MPI", [16, 64, 256], [1.0, 4.0, 12.0])
        assert upper.efficiency_vs(sweep) == [50.0, 50.0, 75.0]

    def test_efficiency_mismatched_sizes(self, sweep):
        other = SweepResult("X", [16, 64], [1.0, 2.0])
        with pytest.raises(ValueError):
            other.efficiency_vs(sweep)

    def test_efficiency_zero_baseline(self):
        base = SweepResult("B", [16], [0.0])
        upper = SweepResult("U", [16], [1.0])
        assert upper.efficiency_vs(base) == [0.0]

    def test_sweep_with(self):
        result = sweep_with(lambda size: size / 8.0, [16, 32], "half")
        assert result.bandwidths_mbs == [2.0, 4.0]
        assert result.label == "half"


class TestReportRendering:
    def test_curve_table_contains_all_points(self, sweep):
        text = curve_table("Figure X", [sweep])
        assert "Figure X" in text
        for size in sweep.sizes:
            assert str(size) in text
        assert "16.00" in text

    def test_curve_table_rejects_mismatch(self, sweep):
        other = SweepResult("Y", [1, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            curve_table("t", [sweep, other])

    def test_curve_table_needs_one_sweep(self):
        with pytest.raises(ValueError):
            curve_table("t", [])

    def test_efficiency_table(self, sweep):
        upper = SweepResult("MPI", [16, 64, 256], [1.0, 4.0, 12.0])
        text = efficiency_table("Fig 6b", upper, sweep)
        assert "75.0" in text
        assert "MPI" in text

    def test_headline_table(self):
        rows = [HeadlineRow("latency", "11 us", "10.1 us", "-8%")]
        text = headline_table("Headlines", rows)
        assert "latency" in text and "11 us" in text and "-8%" in text

    def test_bar_table_totals(self):
        values = {("a", "g1"): 1.0, ("a", "g2"): 2.0,
                  ("b", "g1"): 3.0, ("b", "g2"): 4.0}
        text = bar_table("Fig 2", ["g1", "g2"], ["a", "b"], values)
        lines = text.splitlines()
        assert lines[-1].startswith("TOTAL")
        assert "4" in lines[-1] and "6" in lines[-1]
