"""The headline reproduction targets: simulated metrics vs the paper.

These are the assertions that pin the whole reproduction to the paper's
evaluation (tolerances from DESIGN.md §4).  If a config or protocol change
drifts the measurements, these tests catch it.
"""

import pytest

from repro.bench.calibration import (
    predicted_bandwidth_mbs,
    predicted_latency_us,
    predicted_n_half_bytes,
)
from repro.bench.microbench import fm_pingpong_latency_us, fm_stream_bandwidth_mbs
from repro.bench.mpibench import mpi_pingpong_latency_us, mpi_stream_bandwidth_mbs
from repro.bench.nhalf import n_half
from repro.cluster import Cluster
from repro.cluster.cluster import default_fm_params
from repro.configs import PPRO_FM2, SPARC_FM1

SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)


def fm_curve(machine, version, n_messages=40):
    return [fm_stream_bandwidth_mbs(Cluster(2, machine, version), size,
                                    n_messages)
            for size in SIZES]


@pytest.fixture(scope="module")
def fm1_curve():
    return fm_curve(SPARC_FM1, 1)


@pytest.fixture(scope="module")
def fm2_curve():
    return fm_curve(PPRO_FM2, 2)


class TestFm1Headlines:
    """Figure 3(b): 14 us latency, 17.6 MB/s peak, N-half = 54 B."""

    def test_latency_14us(self):
        latency = fm_pingpong_latency_us(Cluster(2, SPARC_FM1, 1), 16,
                                         iterations=15)
        assert latency == pytest.approx(14.0, rel=0.15)

    def test_peak_17_6_mbs(self, fm1_curve):
        assert max(fm1_curve) == pytest.approx(17.6, rel=0.15)

    def test_n_half_54_bytes(self, fm1_curve):
        # Measured against the paper's 16-512 B figure range.
        idx = SIZES.index(512) + 1
        assert n_half(SIZES[:idx], fm1_curve[:idx]) == pytest.approx(54, rel=0.30)


class TestFm2Headlines:
    """Figure 5: 11 us latency, 77 MB/s peak, N-half < 256 B."""

    def test_latency_11us(self):
        latency = fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), 16,
                                         iterations=15)
        assert latency == pytest.approx(11.0, rel=0.15)

    def test_peak_77_mbs(self, fm2_curve):
        assert max(fm2_curve) == pytest.approx(77.0, rel=0.15)

    def test_n_half_below_256(self, fm2_curve):
        assert n_half(list(SIZES), fm2_curve) < 256

    def test_nearly_fourfold_over_fm1(self, fm1_curve, fm2_curve):
        """§1: 'the nearly fourfold increase of absolute performance of
        FM 2.x with respect to FM 1.x'."""
        ratio = max(fm2_curve) / max(fm1_curve)
        assert 3.5 <= ratio <= 5.0


class TestMpiFm1Band:
    """Figure 4: MPI-FM 1.x delivers only ~20-35% of FM 1.x."""

    @pytest.fixture(scope="class")
    def efficiencies(self, fm1_curve):
        effs = []
        for size, base in zip(SIZES, fm1_curve):
            mpi = mpi_stream_bandwidth_mbs(Cluster(2, SPARC_FM1, 1), size,
                                           n_messages=30)
            effs.append(mpi / base)
        return effs

    def test_never_above_45_percent(self, efficiencies):
        assert max(efficiencies) < 0.45

    def test_small_messages_near_20_percent(self, efficiencies):
        assert 0.15 <= efficiencies[0] <= 0.35

    def test_band_20_to_45(self, efficiencies):
        assert all(0.15 <= e <= 0.45 for e in efficiencies)


class TestMpiFm2Band:
    """Figure 6: 17 us latency, 70 MB/s peak, 70% at 16 B rising to ~90%."""

    @pytest.fixture(scope="class")
    def efficiencies(self, fm2_curve):
        effs = []
        for size, base in zip(SIZES, fm2_curve):
            mpi = mpi_stream_bandwidth_mbs(Cluster(2, PPRO_FM2, 2), size,
                                           n_messages=30)
            effs.append(mpi / base)
        return effs

    def test_latency_17us(self):
        latency = mpi_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), 16,
                                          iterations=12)
        # Our MPI layer is slightly leaner than theirs; the 13.9 us measured
        # sits -18% from 17 us.  Bounded both ways to catch drift.
        assert 12.0 <= latency <= 19.6

    def test_peak_near_70_mbs(self, efficiencies, fm2_curve):
        peak_mpi = max(e * b for e, b in zip(efficiencies, fm2_curve))
        assert peak_mpi == pytest.approx(70.0, rel=0.15)

    def test_efficiency_at_16B_near_70_percent(self, efficiencies):
        assert 0.62 <= efficiencies[0] <= 0.80

    def test_efficiency_rises_to_90_percent(self, efficiencies):
        assert efficiencies[-1] >= 0.85

    def test_efficiency_band_70_90(self, efficiencies):
        """The abstract's claim: 'FM 2.x can deliver 70-90% to higher level
        APIs such as MPI' (we allow a few points above 90)."""
        assert all(0.62 <= e <= 1.0 for e in efficiencies)

    def test_monotone_rise_smalls_to_large(self, efficiencies):
        assert efficiencies[0] < efficiencies[-1]


class TestAnalyticModelAgreement:
    """The first-order model (DESIGN.md §4) must track the simulation."""

    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_predicted_peak_within_20_percent(self, machine, version):
        params = default_fm_params(version)
        predicted = predicted_bandwidth_mbs(machine, params, 2048)
        measured = fm_stream_bandwidth_mbs(Cluster(2, machine, version), 2048,
                                           n_messages=30)
        assert predicted == pytest.approx(measured, rel=0.20)

    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_predicted_latency_within_30_percent(self, machine, version):
        params = default_fm_params(version)
        predicted = predicted_latency_us(machine, params)
        measured = fm_pingpong_latency_us(Cluster(2, machine, version), 16,
                                          iterations=10)
        assert predicted == pytest.approx(measured, rel=0.30)

    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_predicted_n_half_same_regime(self, machine, version):
        params = default_fm_params(version)
        predicted = predicted_n_half_bytes(machine, params)
        curve = [fm_stream_bandwidth_mbs(Cluster(2, machine, version), s, 30)
                 for s in SIZES]
        measured = n_half(list(SIZES), curve)
        assert predicted == pytest.approx(measured, rel=0.5)
