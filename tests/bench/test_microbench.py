"""Microbenchmark harness sanity (mechanics, not calibration)."""

import pytest

from repro.bench.breakdown import STAGES, breakdown_sweep, lean_stream_bandwidth_mbs
from repro.bench.microbench import fm_pingpong, fm_stream
from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1


class TestPingPong:
    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_reports_positive_latency(self, machine, version):
        result = fm_pingpong(Cluster(2, machine, version), 16, iterations=5)
        assert result.one_way_latency_us > 0
        assert result.round_trips == 5

    def test_latency_grows_with_message_size(self):
        small = fm_pingpong(Cluster(2, PPRO_FM2, 2), 16, iterations=5)
        large = fm_pingpong(Cluster(2, PPRO_FM2, 2), 2048, iterations=5)
        assert large.one_way_latency_us > small.one_way_latency_us

    def test_warmup_excluded(self):
        result = fm_pingpong(Cluster(2, PPRO_FM2, 2), 16, iterations=7,
                             warmup=2)
        assert result.round_trips == 7


class TestStream:
    @pytest.mark.parametrize("machine,version", [(SPARC_FM1, 1), (PPRO_FM2, 2)])
    def test_bandwidth_positive_and_bounded(self, machine, version):
        result = fm_stream(Cluster(2, machine, version), 512, n_messages=20)
        assert 0 < result.bandwidth_mbs < machine.link.bandwidth / 1e6
        assert result.n_messages == 20

    def test_bandwidth_monotone_in_size(self):
        bandwidths = [fm_stream(Cluster(2, PPRO_FM2, 2), size, 20).bandwidth_mbs
                      for size in (16, 256, 2048)]
        assert bandwidths == sorted(bandwidths)

    def test_more_messages_converges(self):
        """Pipeline fill amortises: doubling the message count moves the
        measured bandwidth by only a few percent once warm."""
        mid = fm_stream(Cluster(2, PPRO_FM2, 2), 1024, n_messages=40)
        long = fm_stream(Cluster(2, PPRO_FM2, 2), 1024, n_messages=80)
        assert mid.bandwidth_mbs == pytest.approx(long.bandwidth_mbs,
                                                  rel=0.10)

    def test_extract_budget_does_not_change_result(self):
        free = fm_stream(Cluster(2, PPRO_FM2, 2), 1024, 20)
        paced = fm_stream(Cluster(2, PPRO_FM2, 2), 1024, 20,
                          extract_budget=2048)
        assert paced.bandwidth_mbs == pytest.approx(free.bandwidth_mbs,
                                                    rel=0.25)


class TestBreakdown:
    def test_three_stages(self):
        assert [stage.name for stage in STAGES] == [
            "Link Mgmt", "I/O bus Mgmt", "Flow Control"]

    def test_stage_ordering_matches_figure_3a(self):
        """Link-only is far above the bus-limited curves; flow control costs
        only a little more than the bus crossing."""
        curves = breakdown_sweep(SPARC_FM1, (64, 256, 512), n_messages=25)
        link, bus, flow = curves
        assert link.peak_mbs > 2.5 * bus.peak_mbs
        assert bus.peak_mbs >= flow.peak_mbs
        assert flow.peak_mbs > 0.8 * bus.peak_mbs

    def test_lean_driver_reaches_near_link_speed(self):
        from repro.bench.breakdown import _free_bus
        bandwidth = lean_stream_bandwidth_mbs(_free_bus(SPARC_FM1), 512,
                                              n_messages=30)
        wire_payload_limit = SPARC_FM1.link.bandwidth / 1e6 * (128 / 144)
        assert bandwidth > 0.9 * wire_payload_limit
