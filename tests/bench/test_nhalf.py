"""The N-half estimator."""

import pytest

from repro.bench.nhalf import n_half


class TestNHalf:
    def test_exact_hit(self):
        # Peak 10, half power 5 reached exactly at size 64.
        assert n_half([16, 32, 64, 128], [2, 3, 5, 10]) == 64

    def test_log_interpolation(self):
        # Half power (5) falls between 32 (4) and 64 (6): halfway in log2.
        result = n_half([16, 32, 64, 128], [2, 4, 6, 10])
        assert result == pytest.approx(2 ** 5.5, rel=1e-6)

    def test_below_measurement_range(self):
        assert n_half([16, 32], [9, 10]) == 16

    def test_saturating_curve(self):
        sizes = [16, 32, 64, 128, 256, 512]
        bandwidths = [1, 2, 4, 8, 15, 17]
        result = n_half(sizes, bandwidths)
        assert 128 < result < 256

    def test_flat_curve_returns_smallest(self):
        assert n_half([16, 32, 64], [5, 5, 5]) == 16

    def test_validation_length_mismatch(self):
        with pytest.raises(ValueError):
            n_half([1, 2], [1.0])

    def test_validation_too_few_points(self):
        with pytest.raises(ValueError):
            n_half([1], [1.0])

    def test_validation_not_increasing(self):
        with pytest.raises(ValueError):
            n_half([16, 16], [1, 2])

    def test_validation_negative_bandwidth(self):
        with pytest.raises(ValueError):
            n_half([1, 2], [1, -1])

    def test_monotone_shift(self):
        """Higher fixed overhead (same peak) pushes N-half right."""
        sizes = [2 ** k for k in range(4, 12)]
        def curve(overhead_ns):
            return [s / (overhead_ns + s / 0.08) for s in sizes]  # B/ns peak
        assert (n_half(sizes, curve(2000))
                < n_half(sizes, curve(6000)))
