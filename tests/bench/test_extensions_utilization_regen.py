"""Extension studies, utilisation analysis, and the regen CLI."""

import pytest

from repro.bench.extensions import (
    aggregate_pair_bandwidth,
    alltoall_scaling,
    latency_vs_hops,
)
from repro.bench.regen import FIGURES, main as regen_main
from repro.bench.utilization import (
    Utilization,
    fm_stream_utilization,
    mpi_stream_utilization,
)
from repro.configs import PPRO_FM2, SPARC_FM1


class TestAggregatePairs:
    def test_single_pair_matches_plain_stream(self):
        (bandwidth,) = aggregate_pair_bandwidth(PPRO_FM2, 2, 1,
                                                msg_bytes=1024, n_messages=20)
        assert 40 < bandwidth < 90

    def test_two_pairs_no_interference(self):
        pair_bandwidths = aggregate_pair_bandwidth(PPRO_FM2, 2, 2,
                                                   msg_bytes=1024,
                                                   n_messages=20)
        assert len(pair_bandwidths) == 2
        assert max(pair_bandwidths) / min(pair_bandwidths) < 1.1

    def test_fm1_pairs_also_scale(self):
        pair_bandwidths = aggregate_pair_bandwidth(SPARC_FM1, 1, 2,
                                                   msg_bytes=512,
                                                   n_messages=15)
        assert all(b > 10 for b in pair_bandwidths)


class TestLatencyVsHops:
    def test_monotone_and_bounded(self):
        results = latency_vs_hops(max_switches=3)
        latencies = [latency for _n, latency in results]
        assert latencies == sorted(latencies)
        assert latencies[0] == pytest.approx(10.1, rel=0.2)
        assert latencies[-1] < latencies[0] + 4


class TestAlltoallScaling:
    def test_grows_with_nodes_and_fm2_wins(self):
        fm1 = alltoall_scaling(1, node_counts=(2, 4))
        fm2 = alltoall_scaling(2, node_counts=(2, 4))
        assert fm1[0][1] < fm1[1][1]
        assert fm2[0][1] < fm2[1][1]
        assert fm2[0][1] < fm1[0][1]


class TestUtilization:
    def test_fm1_is_send_side_bound(self):
        util = fm_stream_utilization(SPARC_FM1, 1, 512, n_messages=30)
        assert util.bottleneck == "sender_cpu"
        assert util.sender_bus > 0.6

    def test_fm2_send_path_copyless(self):
        util = fm_stream_utilization(PPRO_FM2, 2, 2048, n_messages=30)
        assert util.sender_copy_bytes == 0

    def test_mpi1_receiver_copies_dominate(self):
        util = mpi_stream_utilization(SPARC_FM1, 1, 512, n_messages=20)
        payload = 512 * 20
        assert util.receiver_copy_bytes > 3 * payload

    def test_rows_render(self):
        util = fm_stream_utilization(PPRO_FM2, 2, 256, n_messages=10)
        rows = dict(util.rows())
        assert "bottleneck" in rows
        assert rows["sender CPU busy"].endswith("%")

    def test_invalid_elapsed_rejected(self):
        from repro.cluster import Cluster
        from repro.bench.utilization import _snapshot
        with pytest.raises(ValueError):
            _snapshot(Cluster(2), 0)


class TestRegenCli:
    def test_figures_registry_complete(self):
        assert set(FIGURES) == {"fig1", "fig2", "fig3a", "fig3b", "fig4",
                                "fig5", "fig6", "journey", "scorecard"}

    def test_cheap_figures_run(self, capsys):
        assert regen_main(["fig1", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 2" in out
        assert "regenerated in" in out

    def test_simulated_figure_runs(self, capsys):
        assert regen_main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "N-half" in out
