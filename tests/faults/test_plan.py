"""Fault plans: validation, matching, and stream determinism."""

import pytest

from repro.faults import (
    FOREVER,
    CpuSlow,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NicStall,
)


class TestEpisodeValidation:
    def test_link_fault_needs_a_rate(self):
        with pytest.raises(ValueError, match="ber > 0 or drop_rate"):
            LinkFault()
        with pytest.raises(ValueError, match="ber"):
            LinkFault(ber=1.0)
        with pytest.raises(ValueError, match="drop_rate"):
            LinkFault(drop_rate=1.5)
        LinkFault(drop_rate=1.0)      # a dead link is a valid episode

    def test_windows_must_be_nonempty(self):
        with pytest.raises(ValueError, match="window"):
            LinkFault(ber=1e-4, start_ns=100, end_ns=100)
        with pytest.raises(ValueError, match="start_ns"):
            NicStall(extra_ns=10, start_ns=-1)

    def test_nic_stall_validation(self):
        with pytest.raises(ValueError, match="extra_ns"):
            NicStall(extra_ns=0)
        with pytest.raises(ValueError, match="side"):
            NicStall(extra_ns=10, side="sideways")

    def test_cpu_slow_validation(self):
        with pytest.raises(ValueError, match="factor"):
            CpuSlow(factor=0.5)
        with pytest.raises(ValueError, match="factor > 1 or jitter"):
            CpuSlow()

    def test_plan_rejects_non_episodes(self):
        with pytest.raises(TypeError, match="not a fault episode"):
            FaultPlan(episodes=("corrupt everything",))
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)


class TestMatching:
    def test_link_pattern(self):
        burst = LinkFault(link="link:h0->*", ber=1e-4)
        assert burst.matches("link:h0->s0")
        assert not burst.matches("link:s0->h0")
        assert LinkFault(link="*", drop_rate=0.1).matches("link:s0->h1")

    def test_windows(self):
        burst = LinkFault(ber=1e-4, start_ns=100, end_ns=200)
        assert not burst.active(99)
        assert burst.active(100)
        assert burst.active(199)
        assert not burst.active(200)
        assert LinkFault(ber=1e-4).active(FOREVER - 1)

    def test_nic_and_cpu_selectors(self):
        stall = NicStall(node=1, extra_ns=10, side="rx")
        assert stall.matches(1, "rx")
        assert not stall.matches(1, "tx")
        assert not stall.matches(0, "rx")
        assert NicStall(extra_ns=10).matches(7, "tx")   # node=None = all
        assert CpuSlow(factor=2.0).matches(3)
        assert not CpuSlow(node=2, factor=2.0).matches(3)

    def test_plan_partitions_by_kind(self):
        plan = FaultPlan(seed=1, episodes=(
            LinkFault(ber=1e-4), NicStall(extra_ns=5), CpuSlow(factor=2.0)))
        assert len(plan.link_faults) == 1
        assert len(plan.nic_stalls) == 1
        assert len(plan.cpu_slows) == 1
        assert len(plan) == 3


class TestStreams:
    def test_same_seed_same_stream(self):
        a = FaultInjector(FaultPlan(seed=42))
        b = FaultInjector(FaultPlan(seed=42))
        assert [a.rng("link:x").random() for _ in range(5)] == \
            [b.rng("link:x").random() for _ in range(5)]

    def test_streams_are_independent_per_component(self):
        inj = FaultInjector(FaultPlan(seed=42))
        first = [inj.rng("link:x").random() for _ in range(5)]
        # Interleaving draws on another component must not shift link:x.
        other = FaultInjector(FaultPlan(seed=42))
        mixed = []
        for _ in range(5):
            other.rng("cpu:cpu0").random()
            mixed.append(other.rng("link:x").random())
        assert first == mixed

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1))
        b = FaultInjector(FaultPlan(seed=2))
        assert a.rng("link:x").random() != b.rng("link:x").random()
