"""Planned fault episodes landing on the hardware and protocol layers."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import (
    FmParams,
    FmStalledError,
    FmTransportError,
)
from repro.faults import CpuSlow, FaultInjector, FaultPlan, LinkFault, NicStall
from repro.hardware.bus import IoBus
from repro.hardware.cpu import HostCpu
from repro.hardware.link import Link
from repro.hardware.nic import Nic
from repro.hardware.packet import Packet, PacketFlags, PacketHeader
from repro.hardware.params import BusParams, CpuParams, LinkParams, NicParams
from repro.simkernel import Environment, Store

LINK = LinkParams(bandwidth=160e6, propagation_ns=100, slots=2)
BUS = BusParams(pio_bw=80e6, pio_startup_ns=100, dma_bw=100e6,
                dma_startup_ns=500)
NIC = NicParams(sram_packet_slots=2, host_queue_slots=2, recv_region_slots=4,
                firmware_send_ns=400, firmware_recv_ns=300)
CPU = CpuParams(clock_hz=200e6, memcpy_bw=100e6, memcpy_startup_ns=100,
                call_ns=50, poll_ns=100, per_packet_ns=200, per_message_ns=400)


def make_packet(seq=0, payload=b"x" * 16):
    header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=seq,
                          msg_bytes=len(payload), flags=PacketFlags.NONE)
    return Packet(header, payload)


def wired_link(env, name="faulty-link"):
    link = Link(env, LINK, name=name)
    sink = Store(env)
    link.connect(sink)
    link.start()
    return link, sink


class TestLinkEpisodes:
    def test_burst_corrupts_only_inside_window(self, env):
        # Packets finish the wire at 200, 400, 600, 800 ns (200 ns each,
        # back to back); the burst covers only the first two.
        injector = FaultInjector(FaultPlan(seed=1, episodes=(
            LinkFault(link="faulty-link", start_ns=0, end_ns=500,
                      ber=0.999),))).attach(env)
        link, sink = wired_link(env)

        def sender():
            for seq in range(4):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        env.run()
        fates = []
        while (packet := sink.try_get()) is not None:
            fates.append(bool(packet.header.flags & PacketFlags.CORRUPT))
        assert fates == [True, True, False, False]
        assert link.corrupted == 2
        assert injector.counters["link.corrupt"] == 2
        assert [e[0] for e in injector.events] == [200, 400]
        assert all(kind == "corrupt" for _t, kind, _c, _d in injector.events)

    def test_drop_window_discards_packets(self, env):
        injector = FaultInjector(FaultPlan(seed=1, episodes=(
            LinkFault(link="*", start_ns=0, end_ns=500,
                      drop_rate=1.0),))).attach(env)
        link, sink = wired_link(env)

        def sender():
            for seq in range(5):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        env.run()
        seqs = []
        while (packet := sink.try_get()) is not None:
            seqs.append(packet.header.seq)
        assert seqs == [2, 3, 4]       # survivors, still in order
        assert link.dropped == 2
        assert injector.counters["link.drop"] == 2

    def test_pattern_misses_leave_link_untouched(self, env):
        injector = FaultInjector(FaultPlan(seed=1, episodes=(
            LinkFault(link="link:h9->*", ber=0.999),))).attach(env)
        link, sink = wired_link(env)

        def sender():
            for seq in range(5):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        env.run()
        assert link.corrupted == 0 and link.dropped == 0
        assert injector.events == []


def build_nic(env, node_id=1):
    bus = IoBus(env, BUS)
    nic = Nic(env, NIC, bus, node_id=node_id)
    link = Link(env, LINK, name="tx")
    sink = Store(env)
    link.connect(sink)
    nic.connect_tx(link)
    link.start()
    nic.start()
    return nic, sink


class TestNicStalls:
    def arrival_time(self, plan):
        env = Environment()
        if plan is not None:
            FaultInjector(plan).attach(env)
        nic, sink = build_nic(env)

        def host():
            yield from nic.submit(make_packet())
        env.process(host())

        def receiver():
            yield sink.get()
            return env.now
        proc = env.process(receiver())
        return env.run(until=proc)

    def test_tx_stall_delays_injection(self):
        # Clean: firmware 400 + wire 200 + propagation 100 = 700.
        assert self.arrival_time(None) == 700
        stalled = FaultPlan(seed=0, episodes=(
            NicStall(node=1, extra_ns=1000, side="tx"),))
        assert self.arrival_time(stalled) == 1700

    def test_rx_only_stall_leaves_tx_alone(self):
        rx_only = FaultPlan(seed=0, episodes=(
            NicStall(node=1, extra_ns=1000, side="rx"),))
        assert self.arrival_time(rx_only) == 700

    def test_other_nodes_unaffected_and_stalls_add_up(self):
        other = FaultPlan(seed=0, episodes=(
            NicStall(node=3, extra_ns=1000),))
        assert self.arrival_time(other) == 700
        doubled = FaultPlan(seed=0, episodes=(
            NicStall(node=1, extra_ns=300, side="tx"),
            NicStall(extra_ns=200, side="both"),))
        assert self.arrival_time(doubled) == 700 + 500

    def test_stall_window_expires(self):
        late = FaultPlan(seed=0, episodes=(
            NicStall(node=1, extra_ns=1000, side="tx",
                     start_ns=10_000, end_ns=20_000),))
        assert self.arrival_time(late) == 700


class TestCpuSlow:
    def run_cost(self, plan, cost_ns=1000, name="cpu3"):
        env = Environment()
        injector = FaultInjector(plan).attach(env) if plan is not None else None

        def prog():
            yield from HostCpu(env, CPU, name=name).execute(cost_ns)
        env.process(prog())
        env.run()
        return env.now, injector

    def test_factor_scales_cost(self):
        now, injector = self.run_cost(FaultPlan(seed=0, episodes=(
            CpuSlow(node=3, factor=2.5),)))
        assert now == 2500
        assert injector.counters["cpu.slow_ns"] == 1500

    def test_jitter_is_bounded_and_deterministic(self):
        plan = FaultPlan(seed=9, episodes=(CpuSlow(node=3, jitter_ns=200),))
        first, _ = self.run_cost(plan)
        second, _ = self.run_cost(plan)
        assert 1000 <= first <= 1200
        assert first == second

    def test_other_cpu_untouched(self):
        now, injector = self.run_cost(
            FaultPlan(seed=0, episodes=(CpuSlow(node=7, factor=3.0),)))
        assert now == 1000
        assert injector.counters["cpu.slow_ns"] == 0


class TestClusterIntegration:
    def test_fm_fails_loud_with_diagnosable_error(self):
        """A bit-error burst on the forward path makes FM raise — with
        enough attached diagnostics to reconstruct the packet's journey."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        injector = cluster.inject_faults(FaultPlan(seed=3, episodes=(
            LinkFault(link="link:h0->*", start_ns=20_000, end_ns=2_000_000,
                      ber=1e-4),)))

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1500)
            for _ in range(40):
                yield from node.fm.send_buffer(1, hid, buf, 1500)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(300)

        with pytest.raises(FmTransportError) as exc_info:
            cluster.run([sender, receiver], until_ns=1_000_000_000)
        err = exc_info.value
        assert err.node == 1 and err.src == 0
        assert err.time_ns >= 20_000
        assert err.waypoints          # the journey came along
        report = err.diagnose()
        assert "detected at node 1" in report
        assert "journey:" in report
        # The detection follows the first injected corruption.
        first_injected = injector.events[0][0]
        assert err.time_ns > first_injected

    def test_credits_conserved_under_reverse_path_corruption(self):
        """Corrupting only the credit-return path must never inflate the
        sender's ledger: damaged CONTROL packets are dropped (and counted),
        and the credits they carried are lost, not invented."""
        params = FmParams(packet_payload=256, credits_per_peer=16,
                          credit_batch=8, stall_limit_ns=2_000_000,
                          credit_spin_ns=500)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2,
                          fm_params=params)
        # h1 -> s0 -> h0 carries only node1's credit returns (node0 is the
        # sole sender), so the forward data path stays clean.
        injector = cluster.inject_faults(FaultPlan(seed=5, episodes=(
            LinkFault(link="link:s0->h0", ber=5e-3),)))
        received = []

        def handler(fm, stream, src):
            received.append((yield from stream.receive_bytes(stream.msg_bytes)))

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(64)
            for i in range(120):
                buf.write(bytes([i % 256]) * 64)
                yield from node.fm.send_buffer(1, hid, buf, 64)

        def receiver(node):
            while len(received) < 120:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(1000)

        try:
            cluster.run([sender, receiver], until_ns=100_000_000)
        except (FmStalledError, TimeoutError):
            pass          # lost credits may legitimately starve the sender
        nic0 = cluster.nodes[0].nic
        assert nic0.corrupt_control_packets > 0
        assert injector.counters["link.corrupt"] > 0
        # Conservation: what the sender can still spend plus what the
        # receiver still owes never exceeds the configured allowance.
        # (credits_available absorbs the mailbox, so this also proves no
        # damaged count was absorbed — that would overflow the ledger.)
        available = cluster.nodes[0].fm.credits_available(1)
        pending = cluster.nodes[1].fm._pending_returns.get(0, 0)
        assert available + pending <= params.credits_per_peer

    def test_counters_federated_into_observer(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        observer = cluster.observe()
        injector = cluster.inject_faults(FaultPlan(seed=0))
        assert observer.metrics._counters["faults"] is injector.counters
        # Same federation when the injector is attached first.
        cluster2 = Cluster(2, machine=PPRO_FM2, fm_version=2)
        injector2 = cluster2.inject_faults(FaultPlan(seed=0))
        observer2 = cluster2.observe()
        assert observer2.metrics._counters["faults"] is injector2.counters
