"""Cluster assembly and program execution."""

import pytest

from repro.cluster import Cluster, Node
from repro.cluster.cluster import default_fm_params
from repro.configs import PPRO_FM2, SPARC_FM1
from repro.core import FM1, FM2, FmParams
from repro.hardware.topology import single_switch, switch_chain


class TestBuild:
    def test_minimum_nodes(self):
        with pytest.raises(ValueError):
            Cluster(1)

    def test_fm_version_selects_endpoint(self):
        assert isinstance(Cluster(2, SPARC_FM1, 1).node(0).fm, FM1)
        assert isinstance(Cluster(2, PPRO_FM2, 2).node(0).fm, FM2)

    def test_invalid_fm_version(self):
        with pytest.raises(ValueError):
            default_fm_params(3)

    def test_default_params_per_generation(self):
        assert default_fm_params(1).packet_payload == 128
        assert default_fm_params(2).packet_payload == 1024

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            Cluster(3, topology=single_switch(4))

    def test_custom_topology_accepted(self):
        cluster = Cluster(6, topology=switch_chain(6, hosts_per_switch=2))
        assert cluster.n_nodes == 6

    def test_credit_scheme_capacity_check(self):
        params = FmParams(packet_payload=1024, credits_per_peer=100,
                          credit_batch=8)
        with pytest.raises(ValueError, match="receive region too small"):
            Cluster(8, fm_params=params)

    def test_nodes_have_distinct_hardware(self):
        cluster = Cluster(3)
        cpus = {id(node.cpu) for node in cluster.nodes}
        nics = {id(node.nic) for node in cluster.nodes}
        assert len(cpus) == len(nics) == 3

    def test_node_buffer_helper(self):
        node = Cluster(2).node(0)
        buf = node.buffer(8, fill=b"ab")
        assert buf.read(0, 2) == b"ab"

    def test_rebind_fm_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(RuntimeError):
            cluster.node(0).bind_fm(cluster.fabric, 2, cluster.fm_params)


class TestRun:
    def test_results_in_node_order(self):
        cluster = Cluster(3)
        def make(value):
            def program(node):
                yield node.env.timeout(10)
                return value
            return program
        assert cluster.run([make("a"), make("b"), make("c")]) == ["a", "b", "c"]

    def test_none_program_is_idle(self):
        cluster = Cluster(2)
        def program(node):
            yield node.env.timeout(5)
            return node.node_id
        assert cluster.run([program, None]) == [0, None]

    def test_too_many_programs_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError):
            cluster.run([None, None, None])

    def test_timeout_raises_with_laggards(self):
        cluster = Cluster(2)
        def slow(node):
            yield node.env.timeout(10_000_000)
        with pytest.raises(TimeoutError):
            cluster.run([slow, None], until_ns=1_000)

    def test_program_exception_propagates(self):
        cluster = Cluster(2)
        def bad(node):
            yield node.env.timeout(1)
            raise RuntimeError("program crashed")
        with pytest.raises(RuntimeError, match="program crashed"):
            cluster.run([bad, None])

    def test_now_tracks_environment(self):
        cluster = Cluster(2)
        def program(node):
            yield node.env.timeout(123)
        cluster.run([program, None])
        assert cluster.now == 123
