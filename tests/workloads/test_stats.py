"""Reservoir quantiles vs numpy, the determinism guard, and stats federation."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.workloads.stats import Reservoir, WorkloadStats


class TestReservoirQuantiles:
    @pytest.mark.parametrize("n", [1, 2, 7, 100, 999])
    def test_matches_numpy_inverted_cdf(self, n):
        rng = np.random.default_rng(n)
        values = [int(v) for v in rng.integers(0, 1_000_000, n)]
        reservoir = Reservoir("t")
        for value in values:
            reservoir.record(value)
        for p in (0, 1, 50, 90, 95, 99, 99.9, 100):
            expected = int(np.percentile(values, p, method="inverted_cdf"))
            assert reservoir.percentile(p) == expected, f"p{p} of n={n}"

    def test_mean_and_max(self):
        reservoir = Reservoir("t")
        for value in (10, 20, 60):
            reservoir.record(value)
        assert reservoir.mean == 30
        assert reservoir.summary()["max_ns"] == 60

    def test_empty_reservoir_raises_and_summarises_none(self):
        reservoir = Reservoir("t")
        with pytest.raises(ValueError):
            reservoir.percentile(50)
        with pytest.raises(ValueError):
            _ = reservoir.mean
        summary = reservoir.summary()
        assert summary["count"] == 0
        assert summary["p50_ns"] is None

    def test_percentile_range_checked(self):
        reservoir = Reservoir("t")
        reservoir.record(1)
        with pytest.raises(ValueError):
            reservoir.percentile(101)


class TestReservoirSampling:
    def test_capacity_bounds_kept_samples_not_count(self):
        reservoir = Reservoir("t", capacity=32, seed=0)
        for value in range(1000):
            reservoir.record(value)
        assert len(reservoir) == 32
        assert reservoir.count == 1000
        assert reservoir.total == sum(range(1000))

    def test_determinism_guard_bit_identical_samples(self):
        # Same seed, same value stream -> bit-identical kept samples.
        def fill():
            reservoir = Reservoir("t", capacity=16, seed=42)
            for value in range(500):
                reservoir.record(value * 3)
            return reservoir.samples
        assert fill() == fill()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Reservoir("t", capacity=0)


class FakeEnv(SimpleNamespace):
    """Stats only read ``env.now``; a mutable stand-in is enough."""


class TestWorkloadStats:
    def make(self):
        env = FakeEnv(now=0)
        return env, WorkloadStats(env, name="w")

    def test_throughput_over_active_window(self):
        env, stats = self.make()
        env.now = 1_000
        stats.note_sent(100)
        env.now = 2_000
        stats.note_sent(100)
        env.now = 11_000
        stats.note_completed(10_000, 50)
        stats.note_completed(9_000, 50)
        # 2 completions over 10_000 ns = 10 us -> 200k/s.
        assert stats.throughput_rps() == pytest.approx(200_000)
        report = stats.report()
        assert report["completed"] == 2
        assert report["elapsed_ns"] == 10_000
        assert report["latency"]["p50_ns"] == 9_000

    def test_goodput_scales_request_bytes_to_completions(self):
        env, stats = self.make()
        stats.note_sent(100)
        stats.note_sent(100)
        env.now = 1_000
        stats.note_completed(1_000, 60)
        # Half the sent requests completed: goodput counts 100 + 60 bytes
        # over 1000 ns = 160 MB/s... in MB/s units: 160 bytes/us = 160 MB/s.
        assert stats.goodput_mbs() == pytest.approx(160.0)

    def test_drop_accounting(self):
        _env, stats = self.make()
        stats.note_dropped("shed")
        stats.note_dropped("expired")
        stats.note_dropped("abandoned")
        stats.note_dropped("shed")
        drops = stats.report()["drops"]
        assert drops == {"shed": 2, "expired": 1, "abandoned": 1, "total": 4}

    def test_queue_depth_series_and_waits(self):
        env, stats = self.make()
        env.now = 5
        stats.note_queue_depth(3)
        env.now = 9
        stats.note_queue_depth(1)
        stats.note_queue_wait(400)
        assert stats.queue_depth == [(5, 3), (9, 1)]
        report = stats.report()
        assert report["queue_depth_max"] == 3
        assert report["queue_wait"]["p50_ns"] == 400

    def test_federation_registers_counters_and_mirrors_samples(self):
        from repro.obs.metrics import Metrics
        env, stats = self.make()
        metrics = Metrics()
        stats.federate(metrics)
        stats.note_sent(10)
        env.now = 100
        stats.note_completed(100, 10)
        stats.note_queue_wait(40)
        stats.note_queue_depth(2)
        hist = metrics.histogram("w.latency_ns")
        assert hist.count == 1
        assert metrics.histogram("w.queue_wait_ns").count == 1
        assert metrics.histogram("w.queue_depth").count == 1
        # The counters bag is adopted, not copied.
        stats.counters.add("sent")
        assert stats.counters["sent"] == 2
