"""Sharded services: ring placement, balancers, per-shard accounting."""

from __future__ import annotations

import itertools

import pytest

from repro.workloads.runner import Scenario, run_scenario
from repro.workloads.sharding import (
    BALANCER_NAMES,
    ConsistentHash,
    HashRing,
    LeastPending,
    RoundRobin,
    ShardDirectory,
    key_stream,
    make_balancer,
)


def sharded(servers=4, clients=3, **overrides):
    spec = dict(
        name="sh", kind="rpc", n_nodes=servers + clients, servers=servers,
        arrival="open", rate_rps=40_000.0, n_requests=25,
        req_bytes=128, resp_bytes=128, work_ns=0, seed=5,
    )
    spec.update(overrides)
    return Scenario(**spec)


class TestHashRing:
    def test_lookup_is_stable_and_in_range(self):
        ring = HashRing(4, vnodes=64)
        owners = [ring.lookup(k) for k in range(1000)]
        assert set(owners) <= set(range(4))
        assert owners == [ring.lookup(k) for k in range(1000)]

    def test_every_shard_owns_some_keys(self):
        ring = HashRing(4, vnodes=64)
        owners = {ring.lookup(k) for k in range(1000)}
        assert owners == set(range(4))

    def test_adding_a_shard_moves_only_some_keys(self):
        # The consistent-hashing property: growing the ring re-homes a
        # fraction of the keyspace, not all of it.
        before = HashRing(4, vnodes=64)
        after = HashRing(5, vnodes=64)
        keys = range(2000)
        moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
        assert 0 < moved < len(keys) // 2

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_successors_start_at_the_primary_and_are_distinct(self):
        ring = HashRing(4, vnodes=64)
        for key in range(500):
            replicas = ring.successors(key, 3)
            assert replicas[0] == ring.lookup(key)
            assert len(set(replicas)) == 3
            assert ring.successors(key, 1) == (ring.lookup(key),)

    def test_successors_cover_the_whole_ring_at_full_r(self):
        ring = HashRing(4, vnodes=64)
        assert sorted(ring.successors(7, 4)) == [0, 1, 2, 3]

    def test_successors_rejects_bad_r(self):
        ring = HashRing(3)
        with pytest.raises(ValueError):
            ring.successors(0, 0)
        with pytest.raises(ValueError):
            ring.successors(0, 4)


class TestBalancers:
    def test_round_robin_cycles(self):
        balancer = RoundRobin(3)
        assert [balancer.pick(0) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_least_pending_picks_emptiest_with_lowest_index_ties(self):
        balancer = LeastPending(3)
        assert balancer.pick(0) == 0          # all tied -> lowest index
        balancer.note_issued(0)
        balancer.note_issued(1)
        assert balancer.pick(0) == 2
        balancer.note_issued(2)
        balancer.note_resolved(1)
        assert balancer.pick(0) == 1

    def test_static_ignores_load(self):
        balancer = ConsistentHash(4)
        shard = balancer.pick(42)
        for other in range(4):
            if other != shard:
                balancer.note_issued(other)
        assert balancer.pick(42) == shard

    def test_resolve_without_issue_fails_loudly(self):
        balancer = LeastPending(2)
        with pytest.raises(RuntimeError):
            balancer.note_resolved(0)

    def test_make_balancer_names(self):
        for name in BALANCER_NAMES:
            assert make_balancer(name, 4).n_shards == 4
        with pytest.raises(ValueError):
            make_balancer("random", 4)


class TestKeyStream:
    def test_deterministic_per_client(self):
        a = list(itertools.islice(key_stream(3, "c1", 100), 50))
        b = list(itertools.islice(key_stream(3, "c1", 100), 50))
        c = list(itertools.islice(key_stream(3, "c2", 100), 50))
        assert a == b
        assert a != c
        assert all(0 <= k < 100 for k in a)

    def test_skew_concentrates_mass_on_low_ranks(self):
        uniform = list(itertools.islice(key_stream(3, "c", 64, 0.0), 400))
        skewed = list(itertools.islice(key_stream(3, "c", 64, 1.5), 400))
        top = range(8)
        assert (sum(k in top for k in skewed)
                > 2 * sum(k in top for k in uniform))

    def test_zipf_cdf_draws_match_the_old_choice_stream(self):
        # The precomputed-CDF draw must be draw-for-draw identical to the
        # ``rng.choice(n, p=p)`` it replaced (Generator.choice internally
        # cumsums p, renormalises by the last partial sum, and
        # searchsorts one uniform variate — exactly what key_stream now
        # precomputes), so every historical skewed report stays
        # byte-identical.
        import numpy as np

        from repro.workloads.arrivals import client_rng

        n_keys, skew = 96, 1.3
        new = list(itertools.islice(
            key_stream(9, "pin", n_keys, skew), 500))
        rng = client_rng(9, "keys:pin")
        weights = 1.0 / np.arange(1, n_keys + 1, dtype=np.float64) ** skew
        p = weights / weights.sum()
        old = [int(rng.choice(n_keys, p=p)) for _ in range(500)]
        assert new == old


class TestShardedRuns:
    def test_every_request_resolves_and_shards_sum_to_aggregate(self):
        results = run_scenario(sharded())["results"]
        assert results["completed"] == results["sent"] == 75
        shards = results["shards"]
        assert len(shards) == 4
        assert sum(s["completed"] for s in shards) == results["completed"]
        assert sum(s["sent"] for s in shards) == results["sent"]
        assert results["imbalance"] >= 1.0

    @pytest.mark.parametrize("balancer", BALANCER_NAMES)
    def test_all_balancers_complete_the_workload(self, balancer):
        results = run_scenario(sharded(balancer=balancer))["results"]
        assert results["completed"] == results["sent"]

    def test_round_robin_spreads_uniformly(self):
        results = run_scenario(sharded(balancer="round_robin"))["results"]
        counts = [s["sent"] for s in results["shards"]]
        assert max(counts) - min(counts) <= len(counts)

    def test_skewed_static_is_more_imbalanced_than_least_pending(self):
        static = run_scenario(
            sharded(balancer="static", key_skew=1.5))["results"]
        least = run_scenario(
            sharded(balancer="least_pending", key_skew=1.5))["results"]
        assert static["imbalance"] > least["imbalance"]

    def test_per_shard_policies(self):
        # Shard 0 sheds under pressure, the rest queue: only shard 0
        # reports shed drops, and nothing is silently lost.
        results = run_scenario(sharded(
            servers=2, clients=4, rate_rps=150_000.0, n_requests=30,
            work_ns=20_000, workers=1, queue_capacity=2,
            balancer="round_robin",
            shard_policies=("shed", "queue")))["results"]
        shed_shard, queue_shard = results["shards"]
        assert shed_shard["drops"]["shed"] > 0
        assert queue_shard["drops"]["total"] == 0
        assert (results["completed"] + results["drops"]["total"]
                == results["sent"])

    def test_sharded_rerun_is_byte_identical(self):
        from repro.obs.export import dumps_deterministic
        spec = sharded(balancer="least_pending", key_skew=1.0)
        assert (dumps_deterministic(run_scenario(spec))
                == dumps_deterministic(run_scenario(spec)))

    def test_observer_federates_per_shard_counters(self):
        # run_scenario(observe=True) must register shard counter bags.
        from repro.cluster.cluster import Cluster
        from repro.configs import PPRO_FM2
        from repro.workloads.rpc import RpcEndpoint
        from repro.workloads.sharding import ShardedClient, ShardedService
        from repro.workloads.stats import WorkloadStats
        from repro.workloads.arrivals import ClosedLoop

        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        observer = cluster.observe()
        stats = WorkloadStats(cluster.env, name="w", n_shards=2)
        stats.federate(observer.metrics)
        endpoints = [RpcEndpoint(node, stats) for node in cluster.nodes]
        service = ShardedService(endpoints[:2], stats)
        service.start()
        client = ShardedClient(
            endpoints[2], service, make_balancer("round_robin", 2),
            key_stream(1, "c", 16), arrivals=ClosedLoop(0), seed=1,
            n_requests=8)
        cluster.run([None, None, lambda node: client.run()])
        assert observer.metrics.counter("w.shard0")["completed"] == 4
        assert observer.metrics.counter("w.shard1")["completed"] == 4
        assert observer.metrics.counter("w")["completed"] == 8

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            sharded(balancer="weighted")
        with pytest.raises(ValueError):
            sharded(servers=5, clients=0)        # no client left
        with pytest.raises(ValueError):
            sharded(shard_policies=("queue",))   # wrong length
        with pytest.raises(ValueError):
            sharded(shard_policies=("queue", "lifo", "queue", "queue"))

    def test_shard_policies_round_trips_from_json_lists(self):
        spec = Scenario.from_dict({
            "name": "j", "kind": "rpc", "n_nodes": 4, "servers": 2,
            "shard_policies": ["queue", "shed"],
        })
        assert spec.shard_policies == ("queue", "shed")


class TestOnResolvedRegistration:
    def test_second_issuer_on_one_endpoint_fails_loudly(self):
        # Regression: ShardedClient.__init__ used to overwrite
        # endpoint.on_resolved unconditionally — a second client (or a
        # prober) sharing the endpoint silently corrupted the first
        # balancer's in-flight view.  Now registration raises.
        from repro.cluster.cluster import Cluster
        from repro.configs import PPRO_FM2
        from repro.workloads.arrivals import ClosedLoop
        from repro.workloads.rpc import RpcEndpoint
        from repro.workloads.sharding import ShardedClient
        from repro.workloads.stats import WorkloadStats

        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        stats = WorkloadStats(cluster.env, name="w", n_shards=2)
        endpoints = [RpcEndpoint(node, stats) for node in cluster.nodes]
        directory = ShardDirectory([0, 1])

        def build():
            return ShardedClient(
                endpoints[2], directory, make_balancer("round_robin", 2),
                key_stream(1, "c", 16), arrivals=ClosedLoop(0), seed=1,
                n_requests=4)

        build()
        with pytest.raises(RuntimeError, match="already has an on_resolved"):
            build()


class TestShardDirectory:
    def test_directory_carries_placement(self):
        directory = ShardDirectory([0, 4, 8])
        assert directory.n_shards == 3
        assert directory.shard_nodes == [0, 4, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardDirectory([])
        with pytest.raises(ValueError):
            ShardDirectory([1, 2, 1])
