"""The RPC service layer: policies, both FM generations, determinism."""

from __future__ import annotations

import pytest

from repro.workloads.runner import PRESETS, Scenario, run_scenario


def overload(policy, **overrides):
    """An open-loop scenario offering far more than one worker can serve."""
    spec = dict(
        name=f"overload-{policy}", kind="rpc", n_nodes=3,
        arrival="open", rate_rps=200_000.0, n_requests=30,
        work_ns=20_000, workers=1, queue_capacity=4, policy=policy,
    )
    spec.update(overrides)
    return Scenario(**spec)


class TestRpcBasics:
    def test_closed_loop_completes_every_request(self):
        report = run_scenario(Scenario(
            name="cl", kind="rpc", n_nodes=3, arrival="closed",
            think_ns=5_000, n_requests=20))
        results = report["results"]
        assert results["sent"] == 40          # 2 clients x 20
        assert results["completed"] == 40
        assert results["drops"]["total"] == 0
        assert results["latency"]["p50_ns"] > 0
        assert results["throughput_rps"] > 0

    def test_fm1_transport_works(self):
        report = run_scenario(Scenario(
            name="fm1", kind="rpc", fm_version=1, n_nodes=2,
            arrival="closed", n_requests=15))
        assert report["results"]["completed"] == 15

    def test_fm2_sustains_higher_delivered_load_than_fm1(self):
        # Same machine, same saturating traffic: FM 1.x pays the assembly
        # copy, fixed 128-byte packets, and extract-serialised handlers, so
        # its delivered capacity and tail latency are both worse (§3 vs §4).
        base = dict(name="x", kind="rpc", n_nodes=3, arrival="open",
                    rate_rps=100_000.0, n_requests=30, req_bytes=1024,
                    resp_bytes=1024, work_ns=0)
        fm1 = run_scenario(Scenario(fm_version=1, **base))["results"]
        fm2 = run_scenario(Scenario(fm_version=2, **base))["results"]
        assert fm2["throughput_rps"] > 1.2 * fm1["throughput_rps"]
        assert fm2["latency"]["p99_ns"] < fm1["latency"]["p99_ns"]


class TestPolicies:
    def test_queue_policy_backpressures_without_dropping(self):
        results = run_scenario(overload("queue"))["results"]
        assert results["completed"] == results["sent"] == 60
        assert results["drops"]["total"] == 0
        # Backpressure is visible as queueing delay at the server.
        assert results["queue_depth_max"] >= 3

    def test_shed_policy_bounds_latency_by_dropping(self):
        queue = run_scenario(overload("queue"))["results"]
        shed = run_scenario(overload("shed"))["results"]
        assert shed["drops"]["shed"] > 0
        assert shed["completed"] + shed["drops"]["shed"] == shed["sent"]
        # What shedding buys: accepted requests wait in a never-full queue.
        assert shed["latency"]["p99_ns"] < queue["latency"]["p99_ns"]

    def test_deadline_policy_expires_stale_requests(self):
        results = run_scenario(
            overload("deadline", deadline_ns=100_000))["results"]
        assert results["drops"]["expired"] > 0
        assert (results["completed"] + results["drops"]["expired"]
                == results["sent"])

    def test_bad_policy_rejected(self):
        from repro.workloads.rpc import RpcServer  # noqa: F401
        with pytest.raises(ValueError):
            run_scenario(overload("lifo"))


class TestDeterminism:
    def test_same_scenario_same_report(self):
        spec = Scenario(name="d", kind="rpc", n_nodes=3, arrival="open",
                        rate_rps=30_000.0, n_requests=25)
        assert run_scenario(spec) == run_scenario(spec)

    def test_observer_does_not_change_results(self):
        spec = overload("shed")
        plain = run_scenario(spec)
        observed = run_scenario(spec, observe=True)
        assert plain == observed

    def test_empty_fault_plan_is_bit_identical(self):
        from repro.faults import FaultPlan
        spec = Scenario(name="f", kind="rpc", n_nodes=2, arrival="closed",
                        n_requests=10)
        plain = run_scenario(spec)
        faulted = run_scenario(spec, plan=FaultPlan())
        assert plain["results"] == faulted["results"]
        assert faulted["faults"]["events"] == 0

    def test_nic_stall_plan_slows_the_service(self):
        from repro.faults import FaultPlan
        from repro.faults.plan import NicStall
        spec = Scenario(name="f", kind="rpc", n_nodes=2, arrival="closed",
                        n_requests=15)
        plan = FaultPlan(seed=3, episodes=(
            NicStall(node=0, side="rx", extra_ns=3_000),))
        plain = run_scenario(spec)
        faulted = run_scenario(spec, plan=plan)
        assert (faulted["results"]["latency"]["p50_ns"]
                > plain["results"]["latency"]["p50_ns"])
        assert faulted["results"]["completed"] == 15


class TestStaleResponses:
    def test_late_responses_count_stale_and_requests_resolve_once(self):
        """The deadline policy racing an abandoning client.

        Every request is abandoned before its (slow, possibly expired)
        response lands, so late responses must hit
        ``RpcEndpoint.stale_responses`` — and client-side accounting must
        still resolve each request exactly once (as ``abandoned``), never
        double-counting the stale response as a completion or drop.
        """
        from repro.cluster.cluster import Cluster
        from repro.configs import PPRO_FM2
        from repro.workloads.arrivals import ClosedLoop
        from repro.workloads.rpc import RpcClient, RpcEndpoint, RpcServer
        from repro.workloads.stats import WorkloadStats

        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        stats = WorkloadStats(cluster.env, name="stale")
        endpoints = [RpcEndpoint(node, stats) for node in cluster.nodes]
        server = RpcServer(endpoints[0], stats, workers=1,
                           queue_capacity=8, policy="deadline")
        server.start()
        # 50us of service against a 30us deadline and a 12us abandonment:
        # the client walks away long before any response (OK for the first
        # request, EXPIRED for queued ones) can land — but keeps issuing,
        # so its pump is still extracting when the late responses arrive.
        # (Abandon budgets anchor at send time, so the client's lifetime
        # is exactly n_requests x 12us; 12us keeps it past the ~57us the
        # first late response needs to come back.)
        client = RpcClient(endpoints[1], 0, arrivals=ClosedLoop(0), seed=2,
                           n_requests=8, work_ns=50_000, deadline_ns=30_000,
                           abandon_after_ns=12_000)
        cluster.run([None, lambda node: client.run()])

        endpoint = endpoints[1]
        assert endpoint.stale_responses >= 1
        assert not endpoint.pending          # nothing leaked
        counters = stats.counters
        assert counters["sent"] == 8
        assert counters["abandoned"] == 8
        # Exactly-once accounting: a stale response must not also count as
        # a completion, shed, or expiry.
        assert counters["completed"] == 0
        assert counters["shed"] == 0
        assert counters["expired"] == 0
        assert stats.latency.count == 0
        assert (counters["completed"] + stats.drops()
                == counters["sent"])


class TestAbandonAnchoring:
    def test_open_loop_drain_abandons_on_send_anchored_budgets(self):
        """Regression: the abandon budget anchors at *send* time.

        The drain loop used to grant every outstanding request a fresh
        full ``abandon_after_ns`` from the moment the loop reached it, so
        under overload abandonment ran serially — total drain time grew
        as ~n x budget and late requests effectively never abandoned.
        Anchored correctly, every request whose budget already expired
        abandons the instant the drain reaches it, and the whole run ends
        within one budget of the last send.
        """
        from repro.cluster.cluster import Cluster
        from repro.configs import PPRO_FM2
        from repro.workloads.arrivals import OpenLoop
        from repro.workloads.rpc import RpcClient, RpcEndpoint, RpcServer
        from repro.workloads.stats import WorkloadStats

        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        stats = WorkloadStats(cluster.env, name="anchor")
        endpoints = [RpcEndpoint(node, stats) for node in cluster.nodes]
        server = RpcServer(endpoints[0], stats, workers=1,
                           queue_capacity=16, policy="queue")
        server.start()
        # 10 sends ~10us apart against 200us of service: by drain time
        # every budget (50us) is long expired.
        client = RpcClient(endpoints[1], 0,
                           arrivals=OpenLoop(100_000.0), seed=3,
                           n_requests=10, work_ns=200_000,
                           abandon_after_ns=50_000)
        cluster.run([None, lambda node: client.run()])

        counters = stats.counters
        assert counters["abandoned"] == 10
        assert counters["completed"] == 0
        assert not endpoints[1].pending
        # Send-anchored: the run ends within one budget of the last send
        # (~100us of sends + 50us), not after ten serial budgets (~600us).
        assert cluster.env.now < 300_000


class TestMpiKinds:
    def test_halo_records_every_iteration(self):
        results = run_scenario(Scenario(
            name="h", kind="halo", n_nodes=4, iterations=10,
            halo_bytes=128, compute_ns=1_000))["results"]
        assert results["completed"] == 10
        assert results["latency"]["p99_ns"] > 0

    def test_allreduce_verifies_the_reduction(self):
        results = run_scenario(Scenario(
            name="a", kind="allreduce", n_nodes=3, iterations=5,
            grad_bytes=1024, compute_ns=1_000))["results"]
        assert results["completed"] == 5


class TestScenarioSpec:
    def test_from_dict_round_trip(self):
        from dataclasses import asdict
        scenario = PRESETS["rpc-open"]
        assert Scenario.from_dict(asdict(scenario)) == scenario

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict({"name": "x", "turbo": True})

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="batch")
        with pytest.raises(ValueError):
            Scenario(name="x", machine="cray")
        with pytest.raises(ValueError):
            Scenario(name="x", arrival="hyperbolic")
