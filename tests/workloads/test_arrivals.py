"""Arrival processes: shapes, validation, and the determinism contract."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.workloads.arrivals import (AggregateOpenLoop, Bursty, ClosedLoop,
                                      OpenLoop, client_rng, gap_stream)


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestSpecs:
    def test_open_loop_mean_gap(self):
        assert OpenLoop(rate_rps=1e6).mean_gap_ns == 1000.0

    def test_open_loop_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            OpenLoop(rate_rps=0)

    def test_closed_loop_rejects_negative_think(self):
        with pytest.raises(ValueError):
            ClosedLoop(think_ns=-1)

    def test_closed_loop_exponential_needs_positive_mean(self):
        with pytest.raises(ValueError):
            ClosedLoop(think_ns=0, exponential=True)

    def test_bursty_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            Bursty(rate_rps=1000.0, on_ns=0, off_ns=10)
        with pytest.raises(ValueError):
            Bursty(rate_rps=1000.0, on_ns=10, off_ns=-1)

    def test_gap_stream_rejects_non_spec(self):
        with pytest.raises(TypeError):
            gap_stream(object(), seed=1, client="c")


class TestDeterminism:
    def test_same_spec_seed_client_is_bit_identical(self):
        spec = OpenLoop(rate_rps=50_000.0)
        a = take(gap_stream(spec, seed=3, client="client1"), 200)
        b = take(gap_stream(spec, seed=3, client="client1"), 200)
        assert a == b

    def test_different_clients_draw_independent_streams(self):
        spec = OpenLoop(rate_rps=50_000.0)
        a = take(gap_stream(spec, seed=3, client="client1"), 50)
        b = take(gap_stream(spec, seed=3, client="client2"), 50)
        assert a != b

    def test_different_seeds_differ(self):
        spec = Bursty(rate_rps=50_000.0, on_ns=100_000, off_ns=50_000)
        a = take(gap_stream(spec, seed=1, client="c"), 50)
        b = take(gap_stream(spec, seed=2, client="c"), 50)
        assert a != b

    def test_client_rng_matches_faults_convention(self):
        # Same derivation as repro.faults: default_rng((seed, crc32(name))).
        import zlib
        ours = client_rng(9, "cl").integers(0, 1 << 30, 8)
        ref = np.random.default_rng(
            (9, zlib.crc32(b"cl"))).integers(0, 1 << 30, 8)
        assert list(ours) == list(ref)


class TestShapes:
    def test_fixed_interval_open_loop(self):
        gaps = take(gap_stream(OpenLoop(rate_rps=1e6, poisson=False),
                               seed=1, client="c"), 20)
        assert gaps == [1000] * 20

    def test_poisson_gaps_average_to_the_rate(self):
        spec = OpenLoop(rate_rps=100_000.0)  # mean gap 10_000 ns
        gaps = take(gap_stream(spec, seed=5, client="c"), 4000)
        assert all(g >= 1 for g in gaps)
        assert np.mean(gaps) == pytest.approx(10_000, rel=0.05)

    def test_fixed_think_time(self):
        gaps = take(gap_stream(ClosedLoop(think_ns=777), seed=1, client="c"), 10)
        assert gaps == [777] * 10

    def test_exponential_think_time_mean(self):
        spec = ClosedLoop(think_ns=5_000, exponential=True)
        gaps = take(gap_stream(spec, seed=8, client="c"), 4000)
        assert np.mean(gaps) == pytest.approx(5_000, rel=0.05)

    def test_bursty_arrivals_land_inside_on_windows(self):
        spec = Bursty(rate_rps=200_000.0, on_ns=50_000, off_ns=150_000)
        period = spec.on_ns + spec.off_ns
        t = 0
        for gap in take(gap_stream(spec, seed=4, client="c"), 500):
            t += gap
            assert t % period < spec.on_ns, f"arrival at {t} is in an off-window"


class TestAggregateOpenLoop:
    def test_population_one_matches_plain_open_loop(self):
        # A 1-client aggregate is the same Poisson process: draw-for-draw
        # identical to OpenLoop at the same rate, seed and client name.
        plain = take(gap_stream(OpenLoop(rate_rps=50_000.0),
                                seed=3, client="c"), 300)
        aggregate = take(gap_stream(
            AggregateOpenLoop(rate_rps=50_000.0, population=1),
            seed=3, client="c"), 300)
        assert aggregate == plain

    def test_batch_size_never_changes_the_sequence(self):
        spec = {"rate_rps": 100.0, "population": 500}
        reference = take(gap_stream(
            AggregateOpenLoop(batch=4096, **spec), seed=9, client="c"), 1000)
        for batch in (1, 7, 256):
            got = take(gap_stream(
                AggregateOpenLoop(batch=batch, **spec), seed=9, client="c"),
                1000)
            assert got == reference, f"batch={batch} changed the draws"

    def test_aggregate_rate_is_superposed(self):
        spec = AggregateOpenLoop(rate_rps=10.0, population=10_000)
        assert spec.aggregate_rate_rps == 100_000.0
        gaps = take(gap_stream(spec, seed=2, client="c"), 4000)
        assert all(g >= 1 for g in gaps)
        assert np.mean(gaps) == pytest.approx(spec.mean_gap_ns, rel=0.05)

    def test_fixed_rate_aggregate(self):
        spec = AggregateOpenLoop(rate_rps=1000.0, population=1000,
                                 poisson=False)
        assert take(gap_stream(spec, seed=1, client="c"), 20) == [1000] * 20

    def test_determinism(self):
        spec = AggregateOpenLoop(rate_rps=25.0, population=4000)
        a = take(gap_stream(spec, seed=6, client="client3"), 500)
        b = take(gap_stream(spec, seed=6, client="client3"), 500)
        assert a == b
        c = take(gap_stream(spec, seed=6, client="client4"), 500)
        assert a != c

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateOpenLoop(rate_rps=0.0, population=10)
        with pytest.raises(ValueError):
            AggregateOpenLoop(rate_rps=10.0, population=0)
        with pytest.raises(ValueError):
            AggregateOpenLoop(rate_rps=10.0, population=10, batch=0)
