"""Replication & failover: placement, health, exactly-once retries."""

from __future__ import annotations

import itertools

import pytest

from repro.cluster.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.faults import FaultPlan
from repro.faults.plan import NicStall
from repro.workloads.arrivals import ClosedLoop
from repro.workloads.replication import (
    ReplicatedClient,
    ReplicatedDirectory,
    ReplicatedService,
    ShardHealth,
    ShardSupervisor,
)
from repro.workloads.rpc import RpcEndpoint
from repro.workloads.runner import (
    PRESET_PLANS,
    PRESETS,
    Scenario,
    run_scenario,
)
from repro.workloads.sharding import make_balancer
from repro.workloads.stats import WorkloadStats


def build_cluster(n_shards=2, plan=None, n_extra=1):
    """``n_shards`` server nodes + ``n_extra`` client/supervisor nodes."""
    cluster = Cluster(n_shards + n_extra, machine=PPRO_FM2, fm_version=2)
    if plan is not None:
        cluster.inject_faults(plan)
    stats = WorkloadStats(cluster.env, name="rep", n_shards=n_shards)
    endpoints = [RpcEndpoint(node, stats) for node in cluster.nodes]
    return cluster, stats, endpoints


def build_client(endpoints, service, node, keys, **overrides):
    spec = dict(arrivals=ClosedLoop(0), seed=7, n_requests=4,
                failover_timeout_ns=50_000)
    spec.update(overrides)
    return ReplicatedClient(
        endpoints[node], service,
        make_balancer("static", service.n_shards), iter(keys), **spec)


def key_with_primary(service, primary: int) -> int:
    """A key whose replica set starts at ``primary``."""
    for key in range(10_000):
        if service.replica_set(key)[0] == primary:
            return key
    raise AssertionError("no key found")  # pragma: no cover


class TestShardHealth:
    def test_edges_are_logged_and_idempotent(self):
        cluster, _stats, _eps = build_cluster()
        health = ShardHealth(cluster.env, 3)
        assert health.is_up(1)
        assert health.mark_down(1, "probe_timeout")
        assert not health.mark_down(1, "probe_timeout")   # no double edge
        assert not health.is_up(1)
        assert health.mark_up(1, "probe_ok")
        assert not health.mark_up(1, "probe_ok")
        assert health.transitions == [
            (0, 1, "down", "probe_timeout"), (0, 1, "up", "probe_ok")]

    def test_first_live_prefers_order_and_falls_back_to_primary(self):
        cluster, _stats, _eps = build_cluster()
        health = ShardHealth(cluster.env, 3)
        assert health.first_live((2, 0, 1)) == 2
        health.mark_down(2, "x")
        assert health.first_live((2, 0, 1)) == 0
        health.mark_down(0, "x")
        health.mark_down(1, "x")
        # Everything down: route to the primary and let the request's own
        # clocks decide — an outage, not a routing problem.
        assert health.first_live((2, 0, 1)) == 2


class TestReplicatedDirectory:
    def test_replica_sets_follow_the_ring(self):
        cluster, _stats, _eps = build_cluster(n_shards=4, n_extra=1)
        directory = ReplicatedDirectory(
            [0, 1, 2, 3], ShardHealth(cluster.env, 4), replicas=2)
        for key in range(300):
            replicas = directory.replica_set(key)
            assert len(replicas) == 2
            assert replicas[0] == directory.ring.lookup(key)
            assert replicas[0] != replicas[1]

    def test_validation(self):
        cluster, _stats, _eps = build_cluster()
        health = ShardHealth(cluster.env, 2)
        with pytest.raises(ValueError, match="replicas"):
            ReplicatedDirectory([0, 1], health, replicas=3)
        with pytest.raises(ValueError, match="replicas"):
            ReplicatedDirectory([0, 1], health, replicas=0)
        with pytest.raises(ValueError, match="health map"):
            ReplicatedDirectory([0, 1, 2], health)


class TestFailoverExactlyOnce:
    """The tentpole invariant: across any number of failover retries,
    every logical request resolves exactly once (``completed + drops ==
    sent``), the balancer's in-flight view returns to zero, and late
    responses from failed replicas land as stale duplicates."""

    def test_response_after_retry_counts_once(self):
        # Primary's NIC is dead for the whole run: every request to it
        # fails over and completes on the backup.
        plan = FaultPlan(seed=1, episodes=(
            NicStall(node=0, extra_ns=10**9),))
        cluster, stats, endpoints = build_cluster(plan=plan)
        service = ReplicatedService(endpoints[:2], stats, workers=1)
        service.start()
        key = key_with_primary(service, 0)
        client = build_client(endpoints, service, 2,
                              itertools.repeat(key), n_requests=3)
        cluster.run([None, None, lambda node: client.run()])

        counters = stats.counters
        assert counters["sent"] == 3
        assert counters["completed"] == 3
        assert counters["failover"] == 3
        assert counters["retried"] == 3
        assert stats.drops() == 0
        assert not endpoints[2].pending
        assert client.balancer.pending == [0, 0]
        # Per-shard attribution: failovers on the dead primary,
        # completions on the backup.
        assert stats.shards[0].counters["failover"] == 3
        assert stats.shards[1].counters["completed"] == 3

    def test_stale_duplicate_from_slow_primary_counts_once(self):
        # Primary is slow, not dead: its response arrives *after* the
        # failover resolved the attempt — a stale duplicate, never a
        # second completion.
        plan = FaultPlan(seed=1, episodes=(
            NicStall(node=0, extra_ns=40_000),))
        cluster, stats, endpoints = build_cluster(plan=plan)
        service = ReplicatedService(endpoints[:2], stats, workers=1)
        service.start()
        key = key_with_primary(service, 0)
        client = build_client(endpoints, service, 2,
                              itertools.repeat(key), n_requests=3,
                              failover_timeout_ns=25_000)
        cluster.run([None, None, lambda node: client.run()])

        counters = stats.counters
        assert endpoints[2].stale_responses >= 1
        assert counters["completed"] == 3          # once each, via backup
        assert counters["failover"] == 3
        assert stats.drops() == 0
        assert stats.latency.count == 3            # no double samples
        assert not endpoints[2].pending
        assert client.balancer.pending == [0, 0]

    def test_abandon_after_retry_when_every_replica_is_down(self):
        # Both replicas dead: failover exhausts the replica set, then the
        # plain abandon rule resolves the request as a drop — exactly one
        # drop per logical request, never one per attempt.
        plan = FaultPlan(seed=1, episodes=(
            NicStall(node=0, extra_ns=10**9),
            NicStall(node=1, extra_ns=10**9)))
        cluster, stats, endpoints = build_cluster(plan=plan)
        service = ReplicatedService(endpoints[:2], stats, workers=1)
        service.start()
        key = key_with_primary(service, 0)
        client = build_client(endpoints, service, 2,
                              itertools.repeat(key), n_requests=3,
                              failover_timeout_ns=30_000,
                              abandon_after_ns=30_000)
        cluster.run([None, None, lambda node: client.run()])

        counters = stats.counters
        assert counters["sent"] == 3
        assert counters["completed"] == 0
        assert counters["abandoned"] == 3
        assert counters["failover"] == 3
        assert counters["retried"] == 3
        assert counters["completed"] + stats.drops() == counters["sent"]
        assert not endpoints[2].pending
        assert client.balancer.pending == [0, 0]

    def test_health_aware_routing_skips_a_down_primary(self):
        # With the primary marked down up front, clients route straight
        # to the backup: no failover, no retry, no timeout paid.
        cluster, stats, endpoints = build_cluster()
        service = ReplicatedService(endpoints[:2], stats, workers=1)
        service.start()
        key = key_with_primary(service, 0)
        service.health.mark_down(0, "test")
        client = build_client(endpoints, service, 2,
                              itertools.repeat(key), n_requests=3)
        cluster.run([None, None, lambda node: client.run()])

        assert stats.counters["completed"] == 3
        assert stats.counters["failover"] == 0
        assert stats.shards[0].counters["sent"] == 0
        assert stats.shards[1].counters["sent"] == 3


def build_supervised(plan=None, sample_interval_ns=0):
    """2 server nodes + a supervisor node with its *own* stats object
    (endpoints must be built in node order, SPMD style, so the split
    happens here rather than after :func:`build_cluster`)."""
    cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
    if plan is not None:
        cluster.inject_faults(plan)
    stats = WorkloadStats(cluster.env, name="rep", n_shards=2,
                          sample_interval_ns=sample_interval_ns)
    probe_stats = WorkloadStats(cluster.env, name="probe")
    endpoints = [RpcEndpoint(node, probe_stats if node.node_id == 2
                             else stats) for node in cluster.nodes]
    return cluster, stats, endpoints


class TestShardSupervisor:
    def test_probe_timeout_marks_down_and_probe_ok_readmits(self):
        # Node 0's NIC stalls for [100us, 400us): probes time out inside
        # the window (down), succeed again after it drains (up).
        plan = FaultPlan(seed=1, episodes=(
            NicStall(node=0, start_ns=100_000, end_ns=400_000,
                     extra_ns=400_000),))
        cluster, stats, endpoints = build_supervised(plan=plan)
        service = ReplicatedService(endpoints[:2], stats, workers=1)
        service.start()
        supervisor = ShardSupervisor(
            endpoints[2], service.directory,
            probe_interval_ns=50_000, probe_timeout_ns=40_000)
        supervisor.start()

        def clock(node):
            yield cluster.env.timeout(900_000)

        cluster.run([None, None, clock])
        edges = [(shard, state, reason)
                 for _t, shard, state, reason in service.health.transitions]
        assert (0, "down", "probe_timeout") in edges
        assert (0, "up", "probe_ok") in edges
        assert service.health.is_up(0)
        assert service.health.is_up(1)
        assert supervisor.probes_timed_out >= 1
        assert supervisor.probes_ok >= 2
        # Probe traffic is accounted in the supervisor's own stats, never
        # the workload's.
        assert stats.counters["sent"] == 0
        assert supervisor.probe_stats.counters["sent"] >= 3

    def test_slo_breach_marks_a_shard_down(self):
        # Workload evidence beats the next probe: per-shard drops breach
        # the availability burn rate and the supervisor reacts without a
        # single probe (interval set far past the run).
        cluster, stats, endpoints = build_supervised(
            sample_interval_ns=50_000)
        supervisor = ShardSupervisor(
            endpoints[2],
            ReplicatedDirectory([0, 1], ShardHealth(cluster.env, 2)),
            probe_interval_ns=10**9, probe_timeout_ns=50_000,
            workload_stats=stats, availability_target=0.99)
        supervisor.start()

        def traffic(node):
            env = cluster.env
            for _ in range(4):                      # two full windows
                stats.note_completed(1_000, 64, shard=1)
                stats.note_dropped("abandoned", shard=0)
                yield env.timeout(25_000)
            yield env.timeout(100_000)              # let the breach loop tick

        cluster.run([None, None, traffic])
        assert not supervisor.health.is_up(0)
        assert supervisor.health.is_up(1)
        reasons = {reason for _t, shard, _s, reason
                   in supervisor.health.transitions if shard == 0}
        assert reasons == {"slo_breach"}

    def test_validation(self):
        cluster, _stats, endpoints = build_supervised()
        endpoint = endpoints[2]
        directory = ReplicatedDirectory([0, 1], ShardHealth(cluster.env, 2))
        with pytest.raises(ValueError):
            ShardSupervisor(endpoint, directory, probe_interval_ns=0,
                            probe_timeout_ns=1)
        with pytest.raises(ValueError):
            ShardSupervisor(endpoint, directory, probe_interval_ns=1,
                            probe_timeout_ns=0)
        supervisor = ShardSupervisor(endpoint, directory,
                                     probe_interval_ns=1,
                                     probe_timeout_ns=1)
        supervisor.start()
        with pytest.raises(RuntimeError):
            supervisor.start()


class TestReplicatedScenarios:
    def test_failover_preset_stays_available_through_the_stall(self):
        # The acceptance headline: with R=2 and the supervisor on watch,
        # availability *inside the NicStall window* stays >= 0.99 while
        # the unreplicated control blacks out the stalled shard's keys.
        replicated = run_scenario(
            PRESETS["rpc-replicated-failover"],
            plan=PRESET_PLANS["rpc-replicated-failover"])
        blackout = run_scenario(
            PRESETS["rpc-sharded-blackout"],
            plan=PRESET_PLANS["rpc-sharded-blackout"])

        episode = replicated["fault_windows"]["episodes"][0]
        assert episode["availability"] >= 0.99
        control = blackout["fault_windows"]["episodes"][0]
        assert control["availability"] < 0.9
        assert control["shards"][1]["availability"] < 0.5
        # Nothing is silently lost on either side of the comparison.
        for report in (replicated, blackout):
            results = report["results"]
            assert (results["completed"] + results["drops"]["total"]
                    == results["sent"] == 750)
        # The control plane saw the episode: down on probe/SLO evidence
        # inside the window, probe-confirmed re-admission after it.
        transitions = replicated["replication"]["health_transitions"]
        down = [t for t in transitions
                if t["shard"] == 1 and t["state"] == "down"]
        up = [t for t in transitions
              if t["shard"] == 1 and t["state"] == "up"]
        assert down and up
        assert 2_000_000 <= down[0]["t_ns"] < 3_000_000
        assert up[0]["t_ns"] >= 5_000_000

    def test_replicated_rerun_is_byte_identical(self):
        from repro.obs.export import dumps_deterministic
        spec = Scenario(name="rep", kind="rpc", arrival="closed",
                        n_nodes=7, servers=3, replicas=2, think_ns=20_000,
                        n_requests=25, work_ns=0,
                        failover_timeout_ns=100_000,
                        probe_interval_ns=80_000)
        plan = FaultPlan(seed=2, episodes=(
            NicStall(node=2, start_ns=300_000, end_ns=900_000,
                     extra_ns=200_000),))
        assert (dumps_deterministic(run_scenario(spec, plan=plan))
                == dumps_deterministic(run_scenario(spec, plan=plan)))

    def test_unreplicated_report_keeps_the_pre_replication_schema(self):
        report = run_scenario(Scenario(
            name="plain", kind="rpc", n_nodes=3, arrival="closed",
            think_ns=5_000, n_requests=5))
        assert "replication" not in report
        for field in ("replicas", "probe_interval_ns",
                      "failover_timeout_ns"):
            assert field not in report["scenario"]

    def test_replicated_report_carries_the_control_plane(self):
        report = run_scenario(Scenario(
            name="rep", kind="rpc", arrival="closed", n_nodes=7,
            servers=3, replicas=2, think_ns=20_000, n_requests=10,
            work_ns=0))
        assert report["scenario"]["replicas"] == 2
        replication = report["replication"]
        assert replication["replicas"] == 2
        assert replication["probes"]["sent"] >= 1
        assert replication["failovers"] == 0       # healthy run
        # Probes never pollute workload accounting: 3 workload clients
        # (nodes 3..5; node 6 is the supervisor's) x 10 requests.
        assert report["results"]["sent"] == 30

    def test_scenario_validation(self):
        def spec(**overrides):
            fields = dict(name="x", kind="rpc", n_nodes=7, servers=3,
                          replicas=2)
            fields.update(overrides)
            return Scenario(**fields)

        spec()                                      # the valid baseline
        with pytest.raises(ValueError, match="replicas"):
            spec(replicas=0)
        with pytest.raises(ValueError, match="shards available"):
            spec(replicas=4)
        with pytest.raises(ValueError, match="sharded service"):
            spec(servers=1, replicas=2)
        with pytest.raises(ValueError, match="static"):
            spec(balancer="least_pending")
        with pytest.raises(ValueError, match="supervisor"):
            spec(n_nodes=4)                        # no client beside it
        with pytest.raises(ValueError, match="serial-only"):
            spec(n_nodes=8, partition_groups=2, partitions=2)
        with pytest.raises(ValueError, match="population"):
            spec(population=10)
        with pytest.raises(ValueError, match="probe_interval_ns"):
            spec(probe_interval_ns=0)
        with pytest.raises(ValueError, match="failover_timeout_ns"):
            spec(failover_timeout_ns=-1)
