"""Partition-count invariance: the tentpole contract, pinned byte-for-byte.

A scenario's report must not depend on how many OS worker processes
simulate it — ``partitions=0`` (the serial runner), ``partitions=1`` (the
parallel machinery with no peers) and ``partitions=2`` must all emit the
same canonical JSON.  Alongside the end-to-end pins live the pure
placement/arrival functions the invariance rests on, and the validation
fences that keep unserialisable scenario features out of partitioned runs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults.plan import FaultPlan
from repro.obs.export import dumps_deterministic
from repro.workloads.arrivals import AggregateOpenLoop, OpenLoop
from repro.workloads.runner import (PRESETS, Scenario, client_arrival,
                                    execute_scenario, placement,
                                    population_shares, run_scenario,
                                    scenario_report_dict)


def reports_for(scenario, partition_counts):
    return [dumps_deterministic(
                run_scenario(replace(scenario, partitions=p)))
            for p in partition_counts]


class TestInvariance:
    def test_sharded_preset_reports_byte_identical(self):
        serial, p1, p2 = reports_for(PRESETS["rpc-partitioned"], (0, 1, 2))
        assert serial == p1 == p2

    def test_unsharded_grouped_scenario_byte_identical(self):
        scenario = Scenario(name="grouped-1s", kind="rpc", arrival="open",
                            n_nodes=4, partition_groups=2, servers=1,
                            rate_rps=20_000.0, n_requests=24)
        serial, p2 = reports_for(scenario, (0, 2))
        assert serial == p2

    def test_population_scenario_byte_identical(self):
        # A miniature of the 10^5-client preset: aggregate arrivals,
        # 4 shards over 4 groups, 2 workers.
        scenario = replace(PRESETS["rpc-aggregate-100k"],
                           name="aggregate-mini", population=600,
                           rate_rps=50.0)
        serial, p2 = reports_for(scenario, (0, 2))
        assert serial == p2

    def test_report_never_names_the_partition_count(self):
        spec = scenario_report_dict(PRESETS["rpc-partitioned"])
        assert "partitions" not in spec
        # Model-affecting fields stay in the report.
        assert spec["partition_groups"] == 2
        assert spec["trunk_propagation_ns"] == 4_000


class TestPurePlacement:
    def test_legacy_layout_without_groups(self):
        scenario = replace(PRESETS["rpc-open"], servers=1)
        assert placement(scenario) == ([0], [1, 2, 3])

    def test_grouped_layout_stripes_servers_across_groups(self):
        scenario = PRESETS["rpc-partitioned"]     # 8 nodes, 2 groups
        server_nodes, client_nodes = placement(scenario)
        # Server 0 -> group 0 offset 0 (node 0), server 1 -> group 1
        # offset 0 (node 4): one server per group.
        assert server_nodes == [0, 4]
        assert client_nodes == [1, 2, 3, 5, 6, 7]

    def test_population_shares_split_with_remainder_first(self):
        assert population_shares(10, 4) == [3, 3, 2, 2]
        assert population_shares(8, 4) == [2, 2, 2, 2]

    def test_client_arrival_population_mode(self):
        scenario = replace(PRESETS["rpc-aggregate-100k"], population=100)
        spec, budget = client_arrival(scenario, 0, 12)
        assert isinstance(spec, AggregateOpenLoop)
        assert spec.population == population_shares(100, 12)[0]
        assert budget == scenario.n_requests * spec.population

    def test_client_arrival_plain_mode(self):
        scenario = PRESETS["rpc-open"]
        spec, budget = client_arrival(scenario, 2, 3)
        assert isinstance(spec, OpenLoop)
        assert budget == scenario.n_requests


class TestValidation:
    def test_partitions_require_grouped_rpc(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="halo", partitions=2)
        with pytest.raises(ValueError):
            Scenario(name="x", kind="rpc", partitions=2)   # no groups

    def test_groups_must_divide_over_partitions(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="rpc", n_nodes=8,
                     partition_groups=2, partitions=3)

    def test_serial_only_features_fenced_out(self):
        for field in ({"until_ns": 1_000_000},
                      {"abandon_after_ns": 1_000_000},
                      {"sample_interval_ns": 10_000}):
            with pytest.raises(ValueError):
                replace(PRESETS["rpc-partitioned"], **field)

    def test_population_needs_open_arrival(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="rpc", arrival="closed",
                     n_nodes=4, population=100)
        with pytest.raises(ValueError):
            Scenario(name="x", kind="rpc", arrival="open",
                     n_nodes=4, population=1)   # fewer than client nodes

    def test_plan_and_observe_are_serial_only(self):
        scenario = PRESETS["rpc-partitioned"]
        with pytest.raises(ValueError):
            execute_scenario(scenario, plan=FaultPlan())
        with pytest.raises(ValueError):
            execute_scenario(scenario, observe=True)
