"""Cross-process stats merging: the reduction behind partitioned reports.

Counters and unbounded reservoirs must merge *exactly* (the merged state
equals what one process recording everything would hold); bounded
reservoirs merge to an evenly-spaced subsample whose nearest-rank
quantiles stay within the documented ``1/(2*capacity)`` rank tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simkernel.env import Environment
from repro.workloads.stats import Reservoir, WorkloadStats


def filled(values, capacity=None):
    reservoir = Reservoir("t", capacity=capacity)
    for value in values:
        reservoir.record(value)
    return reservoir


class TestReservoirMerge:
    def test_unbounded_merge_is_exact(self):
        rng = np.random.default_rng(7)
        left = [int(v) for v in rng.integers(0, 10**6, 331)]
        right = [int(v) for v in rng.integers(0, 10**6, 169)]
        merged = filled(left)
        merged.merge(filled(right))
        single = filled(left + right)
        assert sorted(merged.samples) == sorted(single.samples)
        assert (merged.count, merged.total) == (single.count, single.total)
        for p in (0, 50, 90, 99, 100):
            assert merged.percentile(p) == single.percentile(p)

    @pytest.mark.parametrize("capacity", [64, 256])
    def test_bounded_merge_within_rank_tolerance(self, capacity):
        rng = np.random.default_rng(capacity)
        left = [int(v) for v in rng.integers(0, 10**6, 5000)]
        right = [int(v) for v in rng.integers(0, 10**6, 5000)]
        a, b = filled(left, capacity=capacity), filled(right, capacity=capacity)
        # What the merge actually reduces: the union of the two held
        # sample sets (2*capacity order statistics).
        combined = sorted(a.samples + b.samples)
        a.merge(b)
        assert len(a.samples) == capacity
        assert a.count == 10000
        # Every quantile of the merged subsample must land within the
        # documented 1/(2*capacity) rank band of the combined multiset.
        n = len(combined)
        tolerance = 1 / (2 * capacity)
        for p in (1, 25, 50, 75, 90, 99):
            lo = combined[max(0, int(np.floor((p / 100 - tolerance) * n)))]
            hi = combined[min(n - 1, int(np.ceil((p / 100 + tolerance) * n)))]
            assert lo <= a.percentile(p) <= hi, f"p{p} outside rank band"

    def test_snapshot_restore_roundtrip(self):
        reservoir = filled([5, 1, 9])
        clone = Reservoir("t")
        clone.restore(reservoir.snapshot())
        assert clone.samples == reservoir.samples
        assert (clone.count, clone.total) == (3, 15)


class TestWorkloadStatsMerged:
    def make_stats(self, latencies, drops=0, n_shards=0, shard=None):
        env = Environment()
        stats = WorkloadStats(env, name="w", n_shards=n_shards)

        def driver():
            for latency in latencies:
                stats.note_sent(64, shard=shard)
                yield env.timeout(latency)
                stats.note_completed(latency, 64, shard=shard)
            for _ in range(drops):
                stats.note_dropped("shed", shard=shard)

        env.process(driver(), name="driver")
        env.run()
        return stats

    def test_counters_and_latencies_merge_exactly(self):
        a = self.make_stats([100, 300], drops=1)
        b = self.make_stats([200], drops=2)
        merged = WorkloadStats.merged([a.snapshot(), b.snapshot()], name="w")
        assert merged.counters["sent"] == 3
        assert merged.counters["completed"] == 3
        assert merged.counters["shed"] == 3
        assert sorted(merged.latency.samples) == [100, 200, 300]
        assert merged.latency.percentile(50) == 200

    def test_time_span_is_min_first_max_last(self):
        a = self.make_stats([100])
        b = self.make_stats([500])
        merged = WorkloadStats.merged([a.snapshot(), b.snapshot()], name="w")
        assert merged.t_first_send == 0
        assert merged.t_last_done == 500

    def test_shard_fragments_merge_by_index(self):
        a = self.make_stats([100], n_shards=2, shard=0)
        b = self.make_stats([200], n_shards=2, shard=1)
        merged = WorkloadStats.merged([a.snapshot(), b.snapshot()],
                                      name="w", n_shards=2)
        assert merged.shards[0].counters["completed"] == 1
        assert merged.shards[1].latency.samples == [200]
        report = merged.report()
        assert report["shards"][0]["completed"] == 1
