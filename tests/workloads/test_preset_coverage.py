"""Preset drift guard: PRESETS, PRESET_DESCRIPTIONS and the
``--list-presets`` CLI output must agree in both directions, so a new
preset cannot ship undescribed and a removed one cannot leave a stale
blurb behind."""

from repro.workloads.run import main
from repro.workloads.runner import (
    PRESET_DESCRIPTIONS,
    PRESET_PLANS,
    PRESETS,
)


class TestPresetTables:
    def test_every_preset_is_described(self):
        missing = set(PRESETS) - set(PRESET_DESCRIPTIONS)
        assert not missing, f"presets without a --list-presets blurb: " \
                            f"{sorted(missing)}"

    def test_no_stale_descriptions(self):
        stale = set(PRESET_DESCRIPTIONS) - set(PRESETS)
        assert not stale, f"descriptions for removed presets: {sorted(stale)}"

    def test_descriptions_are_nonempty_one_liners(self):
        for name, blurb in PRESET_DESCRIPTIONS.items():
            assert blurb.strip(), f"empty description for {name}"
            assert "\n" not in blurb, f"multi-line description for {name}"

    def test_preset_names_match_their_keys(self):
        for key, scenario in PRESETS.items():
            assert scenario.name == key

    def test_plans_only_name_real_presets(self):
        stale = set(PRESET_PLANS) - set(PRESETS)
        assert not stale, f"fault plans for removed presets: {sorted(stale)}"


class TestListPresetsCli:
    def listed_names(self, capsys):
        assert main(["--list-presets"]) == 0
        out = capsys.readouterr().out
        return [line.split()[0] for line in out.splitlines() if line.strip()]

    def test_cli_lists_exactly_the_presets(self, capsys):
        assert self.listed_names(capsys) == sorted(PRESETS)

    def test_cli_prints_each_blurbs_first_words(self, capsys):
        assert main(["--list-presets"]) == 0
        out = capsys.readouterr().out
        for name, blurb in PRESET_DESCRIPTIONS.items():
            first_words = " ".join(blurb.split()[:3])
            assert any(name in line and first_words in line
                       for line in out.splitlines()), \
                f"{name}'s blurb not rendered by --list-presets"
