"""NIC firmware: send path, receive path, credit mailbox, back-pressure."""

import pytest

from repro.simkernel import Store
from repro.hardware.bus import IoBus
from repro.hardware.link import Link
from repro.hardware.nic import Nic
from repro.hardware.packet import Packet, PacketFlags, PacketHeader
from repro.hardware.params import BusParams, LinkParams, NicParams

BUS = BusParams(pio_bw=80e6, pio_startup_ns=100, dma_bw=100e6,
                dma_startup_ns=500)
NIC = NicParams(sram_packet_slots=2, host_queue_slots=2, recv_region_slots=4,
                firmware_send_ns=400, firmware_recv_ns=300)
LINK = LinkParams(bandwidth=160e6, propagation_ns=50, slots=2)


def make_packet(seq=0, flags=PacketFlags.NONE, credit=0, payload=b"y" * 16):
    header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=seq,
                          msg_bytes=len(payload), flags=flags)
    header.credit_return = credit
    return Packet(header, payload)


def build_nic(env):
    bus = IoBus(env, BUS)
    nic = Nic(env, NIC, bus, node_id=1)
    link = Link(env, LINK, name="tx")
    sink = Store(env)
    link.connect(sink)
    nic.connect_tx(link)
    link.start()
    nic.start()
    return nic, sink


class TestSendPath:
    def test_submit_reaches_link(self, env):
        nic, sink = build_nic(env)
        def host():
            yield from nic.submit(make_packet())
        env.process(host())
        def receiver():
            packet = yield sink.get()
            return env.now
        proc = env.process(receiver())
        at = env.run(until=proc)
        # firmware 400 + wire 200 + propagation 50
        assert at == 650
        assert nic.sent_packets == 1

    def test_sram_backpressure_blocks_host(self, env):
        bus = IoBus(env, BUS)
        nic = Nic(env, NIC, bus, node_id=1)
        link = Link(env, LINK, name="tx")
        sink = Store(env, capacity=1)    # bounded, never drained
        link.connect(sink)
        nic.connect_tx(link)
        link.start()
        nic.start()
        submitted = []
        def host():
            for seq in range(20):
                yield from nic.submit(make_packet(seq))
                submitted.append(env.now)
        env.process(host())
        env.run(until=1_000_000)
        # Bounded pipeline: sram 2 + link ingress 2 + flight 2 + delivery 1
        # + sink 1 (+1 in firmware hand-off) — far fewer than 20.
        assert len(submitted) < 12

    def test_start_requires_tx(self, env):
        bus = IoBus(env, BUS)
        nic = Nic(env, NIC, bus, node_id=0)
        with pytest.raises(RuntimeError, match="connect_tx"):
            nic.start()

    def test_double_connect_rejected(self, env):
        bus = IoBus(env, BUS)
        nic = Nic(env, NIC, bus, node_id=0)
        link = Link(env, LINK)
        nic.connect_tx(link)
        with pytest.raises(RuntimeError):
            nic.connect_tx(link)


class TestReceivePath:
    def test_data_packet_dmas_to_region(self, env):
        nic, _sink = build_nic(env)
        def network():
            yield nic.rx_sram.put(make_packet())
        env.process(network())
        env.run()
        assert nic.recv_region.level == 1
        assert nic.received_packets == 1

    def test_receive_timing(self, env):
        nic, _sink = build_nic(env)
        def network():
            yield nic.rx_sram.put(make_packet())
        env.process(network())
        arrivals = []
        def host():
            while not arrivals:
                item = nic.recv_region.try_get()
                if item is None:
                    yield env.timeout(10)
                else:
                    arrivals.append(env.now)
        proc = env.process(host())
        env.run(until=proc)
        # firmware 300 + dma (500 + 32 B at 100 MB/s = 320) = 1120, then the
        # polling host sees it on its next 10 ns poll boundary.
        assert 1120 <= arrivals[0] <= 1130

    def test_control_packet_updates_mailbox_without_region_slot(self, env):
        nic, _sink = build_nic(env)
        def network():
            yield nic.rx_sram.put(make_packet(
                flags=PacketFlags.CONTROL, credit=5, payload=b""))
        env.process(network())
        env.run()
        assert nic.recv_region.level == 0
        assert nic.control_packets == 1
        assert nic.take_credits(0) == 5
        assert nic.take_credits(0) == 0   # drained

    def test_corrupt_control_packet_dropped_not_absorbed(self, env):
        """Regression: a fault-marked credit return must never reach the
        mailbox — absorbing a damaged credit count would silently skew the
        sender's flow-control ledger."""
        nic, _sink = build_nic(env)
        def network():
            yield nic.rx_sram.put(make_packet(
                flags=PacketFlags.CONTROL, credit=5, payload=b""))
            corrupt = make_packet(
                flags=PacketFlags.CONTROL | PacketFlags.CORRUPT,
                credit=8, payload=b"")
            yield nic.rx_sram.put(corrupt)
        env.process(network())
        env.run()
        assert nic.recv_region.level == 0
        assert nic.control_packets == 1
        assert nic.corrupt_control_packets == 1
        assert nic.take_credits(0) == 5   # only the clean return counted

    def test_credits_accumulate(self, env):
        nic, _sink = build_nic(env)
        def network():
            for _ in range(3):
                yield nic.rx_sram.put(make_packet(
                    flags=PacketFlags.CONTROL, credit=2, payload=b""))
        env.process(network())
        env.run()
        assert nic.take_credits(0) == 6

    def test_full_region_backpressures_into_sram(self, env):
        nic, _sink = build_nic(env)
        def network():
            for seq in range(10):
                yield nic.rx_sram.put(make_packet(seq))
        env.process(network())
        env.run(until=1_000_000)
        # Region holds 4; one more may sit in the firmware waiting to be
        # deposited; the rest are stuck in SRAM/upstream, not dropped.
        assert nic.recv_region.level == 4
        assert nic.received_packets <= 5
