"""Links: serialisation timing, ordering, back-pressure, fault injection."""

import pytest

from repro.simkernel import Environment, Store
from repro.hardware.link import Link
from repro.hardware.packet import HEADER_BYTES, Packet, PacketFlags, PacketHeader
from repro.hardware.params import LinkParams

PARAMS = LinkParams(bandwidth=160e6, propagation_ns=100, slots=2)


def make_packet(seq=0, payload=b"x" * 16):
    header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=seq,
                          msg_bytes=len(payload))
    return Packet(header, payload)


def wired_link(env, params=PARAMS):
    link = Link(env, params, name="test-link")
    sink = Store(env)
    link.connect(sink)
    link.start()
    return link, sink


class TestTiming:
    def test_single_packet_arrival_time(self, env):
        link, sink = wired_link(env)
        packet = make_packet()
        def sender():
            yield link.ingress.put(packet)
        env.process(sender())
        def receiver():
            item = yield sink.get()
            return (item, env.now)
        proc = env.process(receiver())
        received, at = env.run(until=proc)
        assert received is packet
        # wire time = (16+16)B at 160 MB/s = 200 ns, + 100 propagation.
        assert at == 200 + 100

    def test_pipelined_packets_spaced_by_wire_time(self, env):
        link, sink = wired_link(env)
        def sender():
            for seq in range(3):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        arrivals = []
        def receiver():
            for _ in range(3):
                yield sink.get()
                arrivals.append(env.now)
        proc = env.process(receiver())
        env.run(until=proc)
        assert arrivals == [300, 500, 700]  # propagation paid once

    def test_counters(self, env):
        link, sink = wired_link(env)
        def sender():
            yield link.ingress.put(make_packet())
        env.process(sender())
        env.run()
        assert link.packets == 1
        assert link.bytes == 16 + HEADER_BYTES


class TestOrderingAndBackpressure:
    def test_order_preserved(self, env):
        link, sink = wired_link(env)
        def sender():
            for seq in range(10):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        seqs = []
        def receiver():
            for _ in range(10):
                packet = yield sink.get()
                seqs.append(packet.header.seq)
        proc = env.process(receiver())
        env.run(until=proc)
        assert seqs == list(range(10))

    def test_full_target_stalls_wire_without_loss(self, env):
        link = Link(env, PARAMS, name="bp")
        tight_sink = Store(env, capacity=1)
        link.connect(tight_sink)
        link.start()
        n = 12
        sent = []
        def sender():
            for seq in range(n):
                yield link.ingress.put(make_packet(seq))
                sent.append(env.now)
        env.process(sender())
        received = []
        def receiver():
            while len(received) < n:
                yield env.timeout(5_000)   # slow consumer
                item = tight_sink.try_get()
                if item is not None:
                    received.append(item.header.seq)
        proc = env.process(receiver())
        env.run(until=proc)
        assert received == list(range(n))      # nothing dropped, in order
        # Unimpeded, all 12 ingress puts would finish by ~12 wire times
        # (2400 ns); with the consumer draining every 5 us, the bounded
        # pipeline (ingress 2 + flight 2 + delivery 1 + sink 1) forces the
        # sender to wait for consumer progress.
        assert sent[-1] > 5_000

    def test_connect_twice_rejected(self, env):
        link = Link(env, PARAMS)
        link.connect(Store(env))
        with pytest.raises(RuntimeError):
            link.connect(Store(env))

    def test_start_before_connect_rejected(self, env):
        with pytest.raises(RuntimeError):
            Link(env, PARAMS).start()

    def test_double_start_rejected(self, env):
        link = Link(env, PARAMS)
        link.connect(Store(env))
        link.start()
        with pytest.raises(RuntimeError):
            link.start()


class TestFaultInjection:
    def test_no_corruption_by_default(self, env):
        link, sink = wired_link(env)
        def sender():
            for seq in range(20):
                yield link.ingress.put(make_packet(seq))
        env.process(sender())
        env.run()
        assert link.corrupted == 0

    def test_high_ber_corrupts_deterministically(self):
        def run_once():
            env = Environment()
            link, sink = wired_link(env, LinkParams(
                bandwidth=160e6, propagation_ns=100, slots=2,
                bit_error_rate=1e-3))
            def sender():
                for seq in range(50):
                    yield link.ingress.put(make_packet(seq))
            env.process(sender())
            env.run()
            return link.corrupted
        first, second = run_once(), run_once()
        assert first > 0                      # errors do happen at 1e-3 BER
        assert first == second                # and deterministically so

    def test_corrupt_packets_fail_crc(self, env):
        link, sink = wired_link(env, LinkParams(
            bandwidth=160e6, propagation_ns=0, slots=4, bit_error_rate=0.999))
        def sender():
            yield link.ingress.put(make_packet())
        env.process(sender())
        env.run()
        packet = sink.try_get()
        assert packet.header.flags & PacketFlags.CORRUPT
        assert not packet.crc_ok()

    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            LinkParams(bandwidth=1e6, propagation_ns=0, slots=1,
                       bit_error_rate=1.5)
