"""Buffers and copy metering."""

import pytest

from repro.hardware.memory import Buffer, CopyMeter, copy_bytes


class TestBuffer:
    def test_allocation_zeroed(self):
        buf = Buffer(16)
        assert buf.read() == bytes(16)
        assert buf.size == len(buf) == 16

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer(-1)

    def test_from_bytes(self):
        buf = Buffer.from_bytes(b"hello")
        assert buf.read() == b"hello"

    def test_fill_larger_than_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer(2, fill=b"toolong")

    def test_fill_shorter_pads(self):
        buf = Buffer(6, fill=b"ab")
        assert buf.read() == b"ab\x00\x00\x00\x00"

    def test_read_slice(self):
        buf = Buffer.from_bytes(b"0123456789")
        assert buf.read(3, 4) == b"3456"
        assert buf.read(offset=8) == b"89"

    def test_write_at_offset(self):
        buf = Buffer(8)
        buf.write(b"XY", offset=3)
        assert buf.read() == b"\x00\x00\x00XY\x00\x00\x00"

    def test_read_returns_immutable_copy(self):
        buf = Buffer.from_bytes(b"abc")
        data = buf.read()
        buf.write(b"zzz")
        assert data == b"abc"

    @pytest.mark.parametrize("offset,nbytes", [(-1, 2), (0, 99), (9, 2), (0, -1)])
    def test_out_of_range_read(self, offset, nbytes):
        buf = Buffer(10)
        with pytest.raises(IndexError):
            buf.read(offset, nbytes)

    def test_out_of_range_write(self):
        buf = Buffer(4)
        with pytest.raises(IndexError):
            buf.write(b"12345")

    def test_zero_size_buffer(self):
        buf = Buffer(0)
        assert buf.read() == b""

    def test_pinned_flag_in_repr(self):
        assert "pinned" in repr(Buffer(1, pinned=True))


class TestCopyMeter:
    def test_counts_and_bytes(self):
        meter = CopyMeter()
        meter.record(100, "a")
        meter.record(50, "a")
        meter.record(10, "b")
        assert meter.copies == 3
        assert meter.bytes == 160
        assert meter.bytes_for("a") == 150
        assert meter.bytes_for("missing") == 0
        assert meter.labels() == ["a", "b"]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CopyMeter().record(-1)

    def test_reset(self):
        meter = CopyMeter()
        meter.record(5, "x")
        meter.reset()
        assert meter.copies == 0 and meter.bytes == 0 and meter.labels() == []


class TestCopyBytes:
    def test_moves_data(self):
        src = Buffer.from_bytes(b"ABCDEFGH")
        dst = Buffer(8)
        copy_bytes(src, 2, dst, 4, 3)
        assert dst.read() == b"\x00\x00\x00\x00CDE\x00"

    def test_bounds_enforced(self):
        src = Buffer(4)
        dst = Buffer(4)
        with pytest.raises(IndexError):
            copy_bytes(src, 0, dst, 2, 3)
