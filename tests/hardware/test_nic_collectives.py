"""NIC-offloaded collectives: the firmware barrier and broadcast state
machines plus their host bindings."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.rdma import NicCollectives
from repro.hardware.nic import COLL_BARRIER, COLL_BCAST, _binomial_children


def make_cluster(n):
    return Cluster(n, machine=PPRO_FM2, fm_version=2)


class TestBinomialChildren:
    def test_root_fans_out_by_powers_of_two(self):
        assert _binomial_children(0, 8) == [1, 2, 4]
        assert _binomial_children(0, 5) == [1, 2, 4]

    def test_interior_nodes(self):
        assert _binomial_children(1, 8) == [3, 5]
        assert _binomial_children(2, 8) == [6]
        assert _binomial_children(4, 8) == []

    def test_every_rank_has_exactly_one_parent(self):
        for n in (2, 3, 5, 8, 13, 16):
            seen = []
            for rel in range(n):
                seen.extend(_binomial_children(rel, n))
            assert sorted(seen) == list(range(1, n))


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_all_nodes_leave_together(self, n):
        cluster = make_cluster(n)
        colls = [NicCollectives(node, n) for node in cluster.nodes]
        exits = {}
        def program(node):
            coll = colls[node.node_id]
            # Stagger entries so the barrier actually has to wait.
            yield node.env.timeout(1_000 * (node.node_id + 1))
            yield from coll.barrier()
            exits[node.node_id] = node.env.now
        cluster.run([program] * n)
        assert set(exits) == set(range(n))
        # Nobody leaves before the last entry (n * 1000 ns).
        assert min(exits.values()) >= n * 1_000
        for coll in colls:
            assert coll.stats_barriers == 1
        # The collective table is garbage-collected after completion.
        for node in cluster.nodes:
            assert node.nic._colls == {}

    def test_back_to_back_barriers_stay_aligned(self):
        n = 4
        cluster = make_cluster(n)
        colls = [NicCollectives(node, n) for node in cluster.nodes]
        def program(node):
            coll = colls[node.node_id]
            for _ in range(3):
                yield from coll.barrier()
        cluster.run([program] * n)
        for coll in colls:
            assert coll.stats_barriers == 3

    def test_group_bounds_validated(self):
        cluster = make_cluster(2)
        with pytest.raises(ValueError):
            NicCollectives(cluster.node(1), 1)
        with pytest.raises(ValueError):
            NicCollectives(cluster.node(0), 0)


class TestBcast:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_payload_reaches_every_node(self, n):
        cluster = make_cluster(n)
        colls = [NicCollectives(node, n) for node in cluster.nodes]
        payload = bytes(i % 249 for i in range(3000))
        buffers = {}
        def program(node):
            coll = colls[node.node_id]
            fill = payload if node.node_id == 0 else None
            buf = node.buffer(3000, fill=fill)
            buffers[node.node_id] = buf
            yield from coll.bcast(buf, 3000, root=0)
        cluster.run([program] * n)
        for node_id, buf in buffers.items():
            assert buf.read() == payload, f"node {node_id} payload differs"
        for node in cluster.nodes:
            assert node.nic._colls == {}

    def test_nonzero_root(self):
        n = 4
        cluster = make_cluster(n)
        colls = [NicCollectives(node, n) for node in cluster.nodes]
        payload = b"\xabrootward" * 10
        buffers = {}
        def program(node):
            coll = colls[node.node_id]
            fill = payload if node.node_id == 2 else None
            buf = node.buffer(len(payload), fill=fill)
            buffers[node.node_id] = buf
            yield from coll.bcast(buf, len(payload), root=2)
        cluster.run([program] * n)
        for buf in buffers.values():
            assert buf.read() == payload

    def test_bad_root_rejected(self):
        cluster = make_cluster(2)
        coll = NicCollectives(cluster.node(0), 2)
        def program(node):
            yield from coll.bcast(node.buffer(64), 64, root=2)
        with pytest.raises(ValueError):
            cluster.run([program, None])

    def test_opcode_mismatch_on_same_coll_id_rejected(self):
        cluster = make_cluster(2)
        nic = cluster.node(0).nic
        nic._coll_state(5, COLL_BARRIER)
        with pytest.raises(ValueError):
            nic._coll_state(5, COLL_BCAST)


class TestScaling:
    def test_barrier_cost_grows_logarithmically(self):
        """Dissemination rounds are ceil(log2 n): doubling the cluster
        adds one round, so latency grows far slower than linearly."""
        def barrier_ns(n):
            cluster = make_cluster(n)
            colls = [NicCollectives(node, n) for node in cluster.nodes]
            t = {}
            def program(node):
                yield from colls[node.node_id].barrier()
                t[node.node_id] = node.env.now
            cluster.run([program] * n)
            return max(t.values())
        t2, t4, t16 = barrier_ns(2), barrier_ns(4), barrier_ns(16)
        assert t2 < t4 < t16
        # 8x the nodes costs (4 rounds / 2 rounds) ~ 2x, not 8x.
        assert t16 < 4 * t2

    def test_determinism(self):
        def run_once():
            n = 5
            cluster = make_cluster(n)
            colls = [NicCollectives(node, n) for node in cluster.nodes]
            def program(node):
                coll = colls[node.node_id]
                yield from coll.barrier()
                buf = node.buffer(2048, fill=(b"d" * 2048 if
                                              node.node_id == 1 else None))
                yield from coll.bcast(buf, 2048, root=1)
                yield from coll.barrier()
            cluster.run([program] * n)
            return cluster.env.now
        assert run_once() == run_once()
