"""Switches: source-route decoding, contention, errors."""

import pytest

from repro.simkernel import Store
from repro.hardware.link import Link
from repro.hardware.packet import Packet, PacketHeader
from repro.hardware.params import LinkParams, SwitchParams
from repro.hardware.switch import RoutingError, Switch

LINK = LinkParams(bandwidth=160e6, propagation_ns=50, slots=2)
SW = SwitchParams(routing_ns=300, port_buffer_slots=2)


def make_packet(route, payload=b"p" * 16, src=0, dest=1):
    header = PacketHeader(src=src, dest=dest, handler_id=0, msg_id=0, seq=0,
                          msg_bytes=len(payload))
    return Packet(header, payload, route=list(route))


def build_switch(env, n_ports=3):
    """Switch with a link+sink on every output port."""
    switch = Switch(env, n_ports, SW, name="sw")
    sinks = []
    for port in range(n_ports):
        link = Link(env, LINK, name=f"out{port}")
        sink = Store(env)
        link.connect(sink)
        switch.connect_out(port, link)
        link.start()
        sinks.append(sink)
    switch.start()
    return switch, sinks


class TestRouting:
    def test_routes_to_named_port(self, env):
        switch, sinks = build_switch(env)
        def inject():
            yield switch.in_ports[0].put(make_packet([2]))
        env.process(inject())
        env.run()
        assert sinks[2].try_get() is not None
        assert sinks[1].try_get() is None

    def test_route_consumed_per_hop(self, env):
        switch, sinks = build_switch(env)
        packet = make_packet([1, 7])   # 7 would be for a next switch
        def inject():
            yield switch.in_ports[0].put(packet)
        env.process(inject())
        env.run()
        delivered = sinks[1].try_get()
        assert delivered.route == [7]

    def test_routing_cost_charged(self, env):
        switch, sinks = build_switch(env)
        def inject():
            yield switch.in_ports[0].put(make_packet([0]))
        env.process(inject())
        def receiver():
            yield sinks[0].get()
            return env.now
        proc = env.process(receiver())
        at = env.run(until=proc)
        # routing 300 + wire 200 + propagation 50
        assert at == 300 + 200 + 50

    def test_empty_route_is_error(self, env):
        switch, _sinks = build_switch(env)
        def inject():
            yield switch.in_ports[0].put(make_packet([]))
        env.process(inject())
        with pytest.raises(RoutingError, match="empty route"):
            env.run()

    def test_invalid_port_is_error(self, env):
        switch, _sinks = build_switch(env)
        def inject():
            yield switch.in_ports[0].put(make_packet([9]))
        env.process(inject())
        with pytest.raises(RoutingError, match="invalid port"):
            env.run()

    def test_unconnected_port_is_error(self, env):
        switch = Switch(env, 2, SW)
        link = Link(env, LINK)
        link.connect(Store(env))
        switch.connect_out(0, link)
        link.start()
        switch.start()
        def inject():
            yield switch.in_ports[0].put(make_packet([1]))
        env.process(inject())
        with pytest.raises(RoutingError, match="unconnected"):
            env.run()


class TestContention:
    def test_two_inputs_one_output_serialise(self, env):
        switch, sinks = build_switch(env)
        def inject(port):
            yield switch.in_ports[port].put(make_packet([2], src=port))
        env.process(inject(0))
        env.process(inject(1))
        arrivals = []
        def receiver():
            for _ in range(2):
                packet = yield sinks[2].get()
                arrivals.append((packet.header.src, env.now))
        proc = env.process(receiver())
        env.run(until=proc)
        assert len(arrivals) == 2
        # Output link serialises: second arrival one wire-time later.
        assert arrivals[1][1] - arrivals[0][1] == 200

    def test_per_path_fifo(self, env):
        switch, sinks = build_switch(env)
        def inject():
            for seq in range(5):
                packet = make_packet([1])
                packet.header = PacketHeader(src=0, dest=1, handler_id=0,
                                             msg_id=0, seq=seq, msg_bytes=16)
                yield switch.in_ports[0].put(packet)
        env.process(inject())
        seqs = []
        def receiver():
            for _ in range(5):
                packet = yield sinks[1].get()
                seqs.append(packet.header.seq)
        proc = env.process(receiver())
        env.run(until=proc)
        assert seqs == list(range(5))


class TestValidation:
    def test_port_bounds(self, env):
        with pytest.raises(ValueError):
            Switch(env, 0, SW)
        switch = Switch(env, 2, SW)
        with pytest.raises(ValueError):
            switch.connect_out(5, Link(env, LINK))

    def test_double_connect_rejected(self, env):
        switch = Switch(env, 2, SW)
        switch.connect_out(0, Link(env, LINK))
        with pytest.raises(RuntimeError):
            switch.connect_out(0, Link(env, LINK))

    def test_double_start_rejected(self, env):
        switch = Switch(env, 1, SW)
        switch.start()
        with pytest.raises(RuntimeError):
            switch.start()
