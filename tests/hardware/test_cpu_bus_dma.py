"""Host CPU, I/O bus and DMA engines: cost charging and contention."""

import pytest

from repro.hardware.bus import IoBus
from repro.hardware.cpu import HostCpu
from repro.hardware.dma import DmaEngine
from repro.hardware.memory import Buffer
from repro.hardware.params import BusParams, CpuParams

CPU = CpuParams(clock_hz=200e6, memcpy_bw=100e6, memcpy_startup_ns=100,
                call_ns=50, poll_ns=30, per_packet_ns=200, per_message_ns=700)
BUS = BusParams(pio_bw=80e6, pio_startup_ns=200, dma_bw=100e6,
                dma_startup_ns=500)


def run_gen(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return env.now


class TestHostCpu:
    def test_execute_charges_time(self, env):
        cpu = HostCpu(env, CPU)
        assert run_gen(env, cpu.execute(1234)) == 1234
        assert cpu.busy_ns == 1234

    def test_negative_cost_rejected(self, env):
        cpu = HostCpu(env, CPU)
        with pytest.raises(ValueError):
            run_gen(env, cpu.execute(-1))

    def test_memcpy_moves_data_and_charges(self, env):
        cpu = HostCpu(env, CPU)
        src = Buffer.from_bytes(b"x" * 1000)
        dst = Buffer(1000)
        run_gen(env, cpu.memcpy(src, 0, dst, 0, 1000, label="test"))
        assert dst.read() == b"x" * 1000
        # 100 ns startup + 1000 B at 100 MB/s = 10 us.
        assert env.now == 100 + 10_000
        assert cpu.meter.bytes_for("test") == 1000

    def test_memcpy_cost_matches_memcpy(self, env):
        cpu = HostCpu(env, CPU)
        src, dst = Buffer(64), Buffer(64)
        run_gen(env, cpu.memcpy(src, 0, dst, 0, 64))
        assert env.now == cpu.memcpy_cost(64)

    def test_named_costs(self, env):
        cpu = HostCpu(env, CPU)
        assert run_gen(env, cpu.call()) == 50
        env2_total = env.now
        run_gen(env, cpu.poll())
        assert env.now == env2_total + 30

    def test_lock_serialises_two_threads(self, env):
        cpu = HostCpu(env, CPU)
        log = []
        def worker(name):
            yield from cpu.execute(100)
            log.append((name, env.now))
        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == [("a", 100), ("b", 200)]

    def test_cycles_conversion(self):
        assert CPU.cycles(200) == 1000  # 200 cycles at 200 MHz = 1 us


class TestIoBus:
    def test_pio_occupies_cpu_and_bus(self, env):
        cpu = HostCpu(env, CPU)
        bus = IoBus(env, BUS)
        run_gen(env, bus.pio_write(cpu, 800))
        # 200 startup + 800 B at 80 MB/s (10 us).
        assert env.now == 200 + 10_000
        assert cpu.busy_ns == env.now
        assert bus.pio_bytes == 800

    def test_pio_blocks_other_cpu_work(self, env):
        cpu = HostCpu(env, CPU)
        bus = IoBus(env, BUS)
        log = []
        def pio_worker():
            yield from bus.pio_write(cpu, 800)
            log.append(("pio", env.now))
        def cpu_worker():
            yield from cpu.execute(10)
            log.append(("cpu", env.now))
        env.process(pio_worker())
        env.process(cpu_worker())
        env.run()
        assert log == [("pio", 10_200), ("cpu", 10_210)]

    def test_dma_leaves_cpu_free(self, env):
        cpu = HostCpu(env, CPU)
        bus = IoBus(env, BUS)
        log = []
        def dma_worker():
            yield from bus.dma_transfer(1000)
            log.append(("dma", env.now))
        def cpu_worker():
            yield from cpu.execute(100)
            log.append(("cpu", env.now))
        env.process(dma_worker())
        env.process(cpu_worker())
        env.run()
        # CPU work completes during the DMA.
        assert log == [("cpu", 100), ("dma", 10_500)]

    def test_pio_and_dma_contend_for_bus(self, env):
        cpu = HostCpu(env, CPU)
        bus = IoBus(env, BUS)
        done = []
        def dma_worker():
            yield from bus.dma_transfer(1000)   # 10.5 us
            done.append(("dma", env.now))
        def pio_worker():
            yield from bus.pio_write(cpu, 80)   # 1.2 us, queued behind DMA
            done.append(("pio", env.now))
        env.process(dma_worker())
        env.process(pio_worker())
        env.run()
        assert done[0][0] == "dma"
        assert done[1][1] == 10_500 + 200 + 1_000

    def test_cost_helpers(self, env):
        bus = IoBus(env, BUS)
        assert bus.pio_cost(80) == 200 + 1000
        assert bus.dma_cost(100) == 500 + 1000

    def test_negative_sizes_rejected(self, env):
        cpu = HostCpu(env, CPU)
        bus = IoBus(env, BUS)
        with pytest.raises(ValueError):
            run_gen(env, bus.pio_write(cpu, -1))
        with pytest.raises(ValueError):
            run_gen(env, bus.dma_transfer(-1))


class TestDmaEngine:
    def test_transfers_serialise_on_channel(self, env):
        bus = IoBus(env, BUS)
        engine = DmaEngine(env, bus)
        times = []
        def worker():
            yield from engine.transfer(1000)
            times.append(env.now)
        env.process(worker())
        env.process(worker())
        env.run()
        assert times == [10_500, 21_000]
        assert engine.transfers == 2
        assert engine.bytes == 2000

    def test_accounting_counts_at_admission(self, env):
        """Regression: ``transfers``/``bytes`` used to be bumped only at
        completion, so a mid-flight snapshot undercounted admitted work
        and ``in_flight`` was unobservable.  Admission and completion are
        now separate counters."""
        bus = IoBus(env, BUS)
        engine = DmaEngine(env, bus)
        snapshots = []
        def worker():
            yield from engine.transfer(1000)    # completes at 10.5 us
        def snooper():
            yield env.timeout(5_000)            # mid-flight
            snapshots.append((engine.transfers, engine.completed,
                              engine.in_flight, engine.bytes))
        env.process(worker())
        env.process(snooper())
        env.run()
        assert snapshots == [(1, 0, 1, 1000)]
        assert (engine.transfers, engine.completed, engine.in_flight) \
            == (1, 1, 0)

    def test_queued_transfer_is_admitted_immediately(self, env):
        """Both transfers count as admitted the moment they are posted,
        even while the second is still queued behind the first."""
        bus = IoBus(env, BUS)
        engine = DmaEngine(env, bus)
        def worker():
            yield from engine.transfer(1000)
        env.process(worker())
        env.process(worker())
        env.run(until=1)
        assert engine.transfers == 2
        assert engine.completed == 0
        assert engine.in_flight == 2
        env.run()
        assert engine.completed == 2
        assert engine.in_flight == 0

    def test_two_engines_share_bus(self, env):
        bus = IoBus(env, BUS)
        first, second = DmaEngine(env, bus, "a"), DmaEngine(env, bus, "b")
        times = []
        def worker(engine):
            yield from engine.transfer(1000)
            times.append(env.now)
        env.process(worker(first))
        env.process(worker(second))
        env.run()
        # Bus arbitration serialises them even across engines.
        assert times == [10_500, 21_000]
