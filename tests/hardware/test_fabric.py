"""Fabric wiring and end-to-end packet delivery across topologies."""

import pytest

from repro.simkernel import Environment
from repro.hardware.bus import IoBus
from repro.hardware.fabric import Fabric
from repro.hardware.nic import Nic
from repro.hardware.packet import Packet, PacketHeader
from repro.hardware.params import BusParams, LinkParams, NicParams, SwitchParams
from repro.hardware.topology import fat_tree_2level, single_switch, switch_chain

BUS = BusParams(pio_bw=80e6, pio_startup_ns=100, dma_bw=100e6, dma_startup_ns=500)
NIC = NicParams(sram_packet_slots=4, host_queue_slots=4, recv_region_slots=16,
                firmware_send_ns=200, firmware_recv_ns=200)
LINK = LinkParams(bandwidth=160e6, propagation_ns=50, slots=4)
SW = SwitchParams(routing_ns=200, port_buffer_slots=4)


def build(env, topology):
    fabric = Fabric(env, topology, LINK, SW)
    nics = []
    for host in range(topology.n_hosts):
        nic = Nic(env, NIC, IoBus(env, BUS), node_id=host)
        fabric.attach(host, nic)
        nics.append(nic)
    fabric.start()
    return fabric, nics


def send_one(env, fabric, nics, src, dst, payload=b"z" * 32):
    header = PacketHeader(src=src, dest=dst, handler_id=0, msg_id=0, seq=0,
                          msg_bytes=len(payload))
    packet = fabric.stamp_route(Packet(header, payload))
    def host():
        yield from nics[src].submit(packet)
    env.process(host())
    env.run()
    return nics[dst].recv_region.try_get()


class TestDelivery:
    def test_single_switch_delivery(self, env):
        fabric, nics = build(env, single_switch(4))
        delivered = send_one(env, fabric, nics, 0, 3)
        assert delivered is not None
        assert delivered.header.src == 0
        assert delivered.route == []     # fully consumed

    def test_chain_delivery_across_switches(self, env):
        fabric, nics = build(env, switch_chain(8, hosts_per_switch=2))
        delivered = send_one(env, fabric, nics, 0, 7)
        assert delivered is not None
        assert delivered.payload == b"z" * 32

    def test_fat_tree_delivery(self, env):
        fabric, nics = build(env, fat_tree_2level(2, 2, n_spines=2))
        delivered = send_one(env, fabric, nics, 0, 3)
        assert delivered is not None

    def test_all_pairs_single_switch(self, env):
        topo = single_switch(3)
        fabric, nics = build(env, topo)
        for src in range(3):
            for dst in range(3):
                if src == dst:
                    continue
                header = PacketHeader(src=src, dest=dst, handler_id=0,
                                      msg_id=7, seq=0, msg_bytes=4)
                packet = fabric.stamp_route(Packet(header, b"abcd"))
                def host(nic=nics[src], pkt=packet):
                    yield from nic.submit(pkt)
                env.process(host())
        env.run()
        for dst in range(3):
            count = 0
            while nics[dst].recv_region.try_get() is not None:
                count += 1
            assert count == 2


class TestWiring:
    def test_attach_twice_rejected(self, env):
        fabric = Fabric(env, single_switch(2), LINK, SW)
        nic = Nic(env, NIC, IoBus(env, BUS), node_id=0)
        fabric.attach(0, nic)
        with pytest.raises(RuntimeError, match="already attached"):
            fabric.attach(0, nic)

    def test_start_requires_all_hosts(self, env):
        fabric = Fabric(env, single_switch(2), LINK, SW)
        fabric.attach(0, Nic(env, NIC, IoBus(env, BUS), node_id=0))
        with pytest.raises(RuntimeError, match="not attached"):
            fabric.start()

    def test_double_start_rejected(self, env):
        fabric, _nics = build(env, single_switch(2))
        with pytest.raises(RuntimeError, match="twice"):
            fabric.start()

    def test_route_cache_returns_copies(self, env):
        fabric, _nics = build(env, single_switch(3))
        first = fabric.route_for(0, 2)
        first.clear()    # mutate the returned list
        assert fabric.route_for(0, 2) != []

    def test_nic_lookup(self, env):
        fabric, nics = build(env, single_switch(2))
        assert fabric.nic(1) is nics[1]
