"""Parameter dataclasses: validation and the with_* modification helpers."""

import dataclasses

import pytest

from repro.configs import PPRO_FM2, SPARC_FM1
from repro.hardware.params import (
    BusParams,
    CpuParams,
    LinkParams,
    NicParams,
    SwitchParams,
)

GOOD_CPU = dict(clock_hz=200e6, memcpy_bw=100e6, memcpy_startup_ns=100,
                call_ns=50, poll_ns=30, per_packet_ns=100, per_message_ns=500)
GOOD_BUS = dict(pio_bw=80e6, pio_startup_ns=100, dma_bw=100e6,
                dma_startup_ns=500)
GOOD_NIC = dict(sram_packet_slots=4, host_queue_slots=4, recv_region_slots=16,
                firmware_send_ns=100, firmware_recv_ns=100)
GOOD_LINK = dict(bandwidth=160e6, propagation_ns=50, slots=2)


class TestValidation:
    @pytest.mark.parametrize("field", ["clock_hz", "memcpy_bw"])
    def test_cpu_positive_fields(self, field):
        with pytest.raises(ValueError, match=field):
            CpuParams(**{**GOOD_CPU, field: 0})

    @pytest.mark.parametrize("field", ["memcpy_startup_ns", "call_ns",
                                       "poll_ns", "per_packet_ns",
                                       "per_message_ns"])
    def test_cpu_nonnegative_fields(self, field):
        with pytest.raises(ValueError, match=field):
            CpuParams(**{**GOOD_CPU, field: -1})
        CpuParams(**{**GOOD_CPU, field: 0})   # zero is fine

    @pytest.mark.parametrize("field", ["pio_bw", "dma_bw"])
    def test_bus_positive_fields(self, field):
        with pytest.raises(ValueError):
            BusParams(**{**GOOD_BUS, field: 0})

    @pytest.mark.parametrize("field", ["sram_packet_slots", "host_queue_slots",
                                       "recv_region_slots"])
    def test_nic_positive_slots(self, field):
        with pytest.raises(ValueError):
            NicParams(**{**GOOD_NIC, field: 0})

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkParams(**{**GOOD_LINK, "bandwidth": 0})
        with pytest.raises(ValueError):
            LinkParams(**{**GOOD_LINK, "slots": 0})
        with pytest.raises(ValueError):
            LinkParams(**{**GOOD_LINK, "bit_error_rate": -0.1})

    def test_switch_validation(self):
        with pytest.raises(ValueError):
            SwitchParams(routing_ns=-1)
        with pytest.raises(ValueError):
            SwitchParams(port_buffer_slots=0)


class TestWithHelpers:
    def test_with_link_changes_only_link(self):
        modified = PPRO_FM2.with_link(bit_error_rate=1e-5)
        assert modified.link.bit_error_rate == 1e-5
        assert modified.link.bandwidth == PPRO_FM2.link.bandwidth
        assert modified.cpu == PPRO_FM2.cpu
        assert PPRO_FM2.link.bit_error_rate == 0.0   # original untouched

    def test_with_cpu(self):
        modified = SPARC_FM1.with_cpu(memcpy_bw=50e6)
        assert modified.cpu.memcpy_bw == 50e6
        assert modified.bus == SPARC_FM1.bus

    def test_with_bus_and_nic(self):
        modified = PPRO_FM2.with_bus(pio_bw=1e9).with_nic(sram_packet_slots=2)
        assert modified.bus.pio_bw == 1e9
        assert modified.nic.sram_packet_slots == 2

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PPRO_FM2.cpu.poll_ns = 1


class TestCalibratedConfigs:
    @pytest.mark.parametrize("machine", [SPARC_FM1, PPRO_FM2],
                             ids=["sparc", "ppro"])
    def test_configs_internally_consistent(self, machine):
        # Receive DMA must be at least as fast as the wire, or the NIC
        # could never keep up in steady state.
        assert machine.bus.dma_bw >= machine.link.bandwidth / 4
        # memcpy must beat PIO (else the copy-avoidance story is moot).
        assert machine.cpu.memcpy_bw >= machine.bus.pio_bw * 0.7
        # Clean network by default.
        assert machine.link.bit_error_rate == 0.0

    def test_ppro_is_uniformly_faster(self):
        assert PPRO_FM2.cpu.memcpy_bw > SPARC_FM1.cpu.memcpy_bw
        assert PPRO_FM2.bus.pio_bw > SPARC_FM1.bus.pio_bw
        assert PPRO_FM2.bus.dma_bw > SPARC_FM1.bus.dma_bw
        assert PPRO_FM2.link.bandwidth > SPARC_FM1.link.bandwidth
