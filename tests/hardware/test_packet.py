"""Packet headers, flags, CRC."""

import pytest

from repro.hardware.packet import (
    HEADER_BYTES,
    Packet,
    PacketFlags,
    PacketHeader,
    compute_crc,
)


def make_header(**overrides):
    defaults = dict(src=0, dest=1, handler_id=0, msg_id=0, seq=0, msg_bytes=10)
    defaults.update(overrides)
    return PacketHeader(**defaults)


class TestHeader:
    def test_flags_predicates(self):
        header = make_header(flags=PacketFlags.FIRST | PacketFlags.LAST)
        assert header.is_first and header.is_last and not header.is_control

    def test_control_flag(self):
        assert make_header(flags=PacketFlags.CONTROL).is_control

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            make_header(src=-1)

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            make_header(seq=-2)


class TestPacket:
    def test_wire_size_includes_header(self):
        packet = Packet(make_header(), b"12345")
        assert packet.wire_bytes == HEADER_BYTES + 5
        assert packet.payload_bytes == 5

    def test_payload_coerced_to_bytes(self):
        packet = Packet(make_header(), bytearray(b"abc"))
        assert isinstance(packet.payload, bytes)

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(TypeError):
            Packet(make_header(), "string")

    def test_crc_auto_computed_and_valid(self):
        packet = Packet(make_header(), b"payload")
        assert packet.crc == compute_crc(b"payload")
        assert packet.crc_ok()

    def test_corrupt_flag_fails_crc(self):
        packet = Packet(make_header(), b"payload")
        packet.header.flags |= PacketFlags.CORRUPT
        assert not packet.crc_ok()

    def test_mismatched_crc_fails(self):
        packet = Packet(make_header(), b"payload")
        packet.payload = b"tampered"
        assert not packet.crc_ok()

    def test_empty_payload(self):
        packet = Packet(make_header(msg_bytes=0), b"")
        assert packet.wire_bytes == HEADER_BYTES
        assert packet.crc_ok()

    def test_crc_distinguishes_payloads(self):
        assert compute_crc(b"a") != compute_crc(b"b")
