"""Topologies: builders, port numbering, source routes."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.topology import (
    Topology,
    fat_tree_2level,
    host_node,
    single_switch,
    switch_chain,
    switch_node,
)


class TestBuilders:
    def test_single_switch_shape(self):
        topo = single_switch(4)
        assert topo.n_hosts == 4
        assert topo.n_switches == 1
        assert topo.switch_degree(0) == 4

    def test_single_switch_minimum(self):
        with pytest.raises(ValueError):
            single_switch(1)

    def test_chain_switch_count(self):
        topo = switch_chain(10, hosts_per_switch=4)
        assert topo.n_switches == 3
        assert topo.n_hosts == 10

    def test_fat_tree_shape(self):
        topo = fat_tree_2level(n_leaf_switches=3, hosts_per_leaf=2, n_spines=2)
        assert topo.n_hosts == 6
        assert topo.n_switches == 5
        # Each leaf connects its hosts plus every spine.
        assert topo.switch_degree(0) == 2 + 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            switch_chain(1)
        with pytest.raises(ValueError):
            fat_tree_2level(0, 2)


class TestValidation:
    def test_host_needs_one_link(self):
        g = nx.Graph()
        g.add_edge(host_node(0), switch_node(0))
        g.add_edge(host_node(0), switch_node(1))
        g.add_edge(host_node(1), switch_node(0))
        g.add_edge(switch_node(0), switch_node(1))
        with pytest.raises(ValueError, match="exactly one link"):
            Topology(g, n_hosts=2, n_switches=2)

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_edge(host_node(0), switch_node(0))
        g.add_edge(host_node(1), switch_node(1))
        with pytest.raises(ValueError, match="connected"):
            Topology(g, n_hosts=2, n_switches=2)

    def test_missing_host_rejected(self):
        g = nx.Graph()
        g.add_edge(host_node(0), switch_node(0))
        with pytest.raises(ValueError, match="missing"):
            Topology(g, n_hosts=2, n_switches=1)


class TestRoutes:
    def test_same_host_empty_route(self):
        topo = single_switch(3)
        assert topo.source_route(1, 1) == []
        assert topo.hop_count(1, 1) == 0

    def test_single_switch_route_length(self):
        topo = single_switch(4)
        route = topo.source_route(0, 3)
        assert len(route) == 1
        assert topo.hop_count(0, 3) == 2

    def test_route_port_points_at_destination(self):
        topo = single_switch(4)
        route = topo.source_route(0, 3)
        neighbors = topo.switch_neighbors(0)
        assert neighbors[route[0]] == host_node(3)

    def test_chain_route_crosses_switches(self):
        topo = switch_chain(8, hosts_per_switch=2)
        route = topo.source_route(0, 7)   # switch 0 -> ... -> switch 3
        assert len(route) == 4
        assert topo.hop_count(0, 7) == 5

    def test_route_out_of_range(self):
        topo = single_switch(2)
        with pytest.raises(ValueError):
            topo.source_route(0, 5)

    def test_port_of_unrelated_neighbor(self):
        topo = switch_chain(4, hosts_per_switch=2)
        with pytest.raises(ValueError, match="not adjacent"):
            topo.switch_port_of(0, host_node(3))


@st.composite
def random_topology(draw):
    n_hosts = draw(st.integers(min_value=2, max_value=10))
    hosts_per_switch = draw(st.integers(min_value=1, max_value=4))
    kind = draw(st.sampled_from(["single", "chain", "fat"]))
    if kind == "single":
        return single_switch(n_hosts)
    if kind == "chain":
        return switch_chain(n_hosts, hosts_per_switch)
    leaves = max(1, n_hosts // max(hosts_per_switch, 1))
    per_leaf = -(-n_hosts // leaves)
    topo = fat_tree_2level(leaves, per_leaf,
                           n_spines=draw(st.integers(min_value=1, max_value=3)))
    return topo


@settings(max_examples=40, deadline=None)
@given(topo=random_topology(), data=st.data())
def test_every_route_is_walkable(topo, data):
    """Any (src, dst) route, followed hop by hop, ends at the destination."""
    src = data.draw(st.integers(min_value=0, max_value=topo.n_hosts - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.n_hosts - 1))
    route = topo.source_route(src, dst)
    if src == dst:
        assert route == []
        return
    # Walk: start at src's switch, follow each port choice.
    position = next(iter(topo.graph.neighbors(host_node(src))))
    for hop, port in enumerate(route):
        kind, idx = position
        assert kind == "s"
        neighbors = topo.switch_neighbors(idx)
        assert 0 <= port < len(neighbors)
        position = neighbors[port]
    assert position == host_node(dst)
