"""End-to-end pipeline runs: conservation, placement, operators."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.dataflow.engine import (build_pipeline_graph, place_stages,
                                   required_nodes, run_pipeline)
from repro.dataflow.graph import StreamGraph
from repro.dataflow.stats import PipelineStats
from repro.workloads.runner import Scenario, run_scenario


def pipeline_scenario(**overrides):
    """A small rollup pipeline: 1 source -> 2 hash lanes -> sink."""
    spec = dict(
        name="p", kind="pipeline", pipeline="rollup", arrival="open",
        n_nodes=5, n_sources=1, branches=2, rate_rps=200_000.0,
        n_requests=60, req_bytes=64, work_ns=200, window_ns=100_000,
        n_keys=8, queue_capacity=8,
    )
    spec.update(overrides)
    return Scenario(**spec)


def conservation_ok(results):
    c = results["conservation"]
    assert c["ok"], c
    return c


class TestRollup:
    def test_conserves_every_source_record(self):
        results = run_scenario(pipeline_scenario())["results"]
        c = conservation_ok(results)
        assert c["sources_emitted"] == 60
        assert c["sink_source_records"] == 60
        assert results["records"]["dropped"] == 0
        assert results["latency"]["p50_ns"] > 0
        assert results["throughput_rps"] > 0

    def test_per_stage_sections(self):
        results = run_scenario(pipeline_scenario())["results"]
        stages = {s["name"]: s for s in results["stages"]}
        assert set(stages) == {"source0", "rollup.0", "rollup.1", "sink"}
        assert stages["source0"]["emitted"] == 60
        # Hash fan-out: the lanes together see every source record.
        assert (stages["rollup.0"]["received"]
                + stages["rollup.1"]["received"]) == 60
        # Windows aggregate: the sink sees fewer, fatter records.
        assert 0 < stages["sink"]["received"] <= 60
        for stage in stages.values():
            assert stage["done_ns"] is not None

    def test_edges_report_every_hop(self):
        # edge_report() raises if any edge lost records in flight, so a
        # report coming back at all is the no-loss proof; rows carry the
        # per-edge telemetry.
        results = run_scenario(pipeline_scenario())["results"]
        assert results["edges"]
        for edge in results["edges"]:
            assert edge["messages"] >= 1          # at least the EOS frame
            assert edge["records"] >= 0
        source_out = [e for e in results["edges"] if e["src"] == "source0"]
        assert sum(e["records"] for e in source_out) == 60

    def test_sliding_window_still_conserves(self):
        results = run_scenario(pipeline_scenario(
            window_ns=100_000, window_slide_ns=50_000))["results"]
        conservation_ok(results)

    def test_round_robin_partitioning_also_conserves(self):
        results = run_scenario(
            pipeline_scenario(partition_by="round_robin"))["results"]
        conservation_ok(results)


class TestScatterGather:
    def test_round_robin_lanes_share_the_load_evenly(self):
        results = run_scenario(pipeline_scenario(
            pipeline="scatter_gather", branches=3, n_nodes=5))["results"]
        lanes = [s for s in results["stages"]
                 if s["name"].startswith("work.")]
        assert len(lanes) == 3
        assert [lane["received"] for lane in lanes] == [20, 20, 20]
        conservation_ok(results)

    def test_map_lanes_forward_every_record(self):
        results = run_scenario(pipeline_scenario(
            pipeline="scatter_gather"))["results"]
        c = conservation_ok(results)
        # No aggregation: the sink sees exactly the emitted records.
        assert results["records"]["delivered"] == c["sources_emitted"]


class TestPlacement:
    def test_colocate_runs_with_local_edges(self):
        spread = run_scenario(pipeline_scenario())["results"]
        coloc = run_scenario(pipeline_scenario(
            stage_placement="colocate", n_nodes=2))["results"]
        conservation_ok(coloc)
        assert all(not e["local"] for e in spread["edges"])
        assert any(e["local"] for e in coloc["edges"])

    def test_spread_needs_one_node_per_stage(self):
        graph = build_pipeline_graph(pipeline_scenario())
        with pytest.raises(ValueError, match="one node per stage"):
            place_stages(graph, "spread", 3)

    def test_colocate_anchors_lanes_on_source_nodes(self):
        scenario = pipeline_scenario(n_sources=2, n_nodes=2, branches=2,
                                     stage_placement="colocate")
        graph = build_pipeline_graph(scenario)
        mapping = place_stages(graph, "colocate", 2)
        by_name = {graph.stages[sid].name: node
                   for sid, node in mapping.items()}
        assert by_name["source0"] == 0 and by_name["source1"] == 1
        # Lanes deal round-robin over upstream source nodes.
        assert {by_name["rollup.0"], by_name["rollup.1"]} == {0, 1}

    def test_required_nodes_arithmetic(self):
        assert required_nodes("rollup", 3, 4, "spread") == 8
        assert required_nodes("rollup", 3, 4, "colocate") == 3
        assert required_nodes("rollup", 1, 4, "colocate") == 2


class TestCustomGraph:
    def test_filter_pipeline_accounts_dropped_by_predicate(self):
        scenario = pipeline_scenario(branches=1, n_nodes=3, n_keys=8)
        graph = StreamGraph()
        graph.source("source0").filter("even_keys",
                                       name="keep_even").sink("sink")
        graph.validate()
        cluster = Cluster(scenario.n_nodes,
                          fm_version=scenario.fm_version)
        stats = PipelineStats(cluster.env)
        run_pipeline(cluster, scenario, stats, graph=graph)
        results = stats.report()
        c = conservation_ok(results)
        assert c["filtered"] > 0                     # odd keys dropped
        assert c["sink_source_records"] + c["filtered"] == 60
        keep = next(s for s in results["stages"]
                    if s["name"] == "keep_even")
        assert keep["filtered"] + keep["emitted"] == keep["received"]


class TestScenarioValidation:
    def test_pipeline_requires_fm2(self):
        with pytest.raises(ValueError, match="fm_version must be 2"):
            pipeline_scenario(fm_version=1)

    def test_pipeline_rejects_closed_loop_arrivals(self):
        with pytest.raises(ValueError, match="one-way streams"):
            pipeline_scenario(arrival="closed")

    def test_pipeline_wants_enough_nodes(self):
        with pytest.raises(ValueError, match="needs >= 4 nodes"):
            pipeline_scenario(n_nodes=3)

    def test_req_bytes_must_fit_a_record(self):
        with pytest.raises(ValueError, match="per-record wire footprint"):
            pipeline_scenario(req_bytes=16)

    def test_pipeline_rejects_sharding(self):
        with pytest.raises(ValueError, match="branches"):
            pipeline_scenario(servers=4)

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="pipeline must be one of"):
            pipeline_scenario(pipeline="dag")
