"""The Stream API: graph construction, validation, window semantics."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import StreamGraph
from repro.dataflow.ops import WindowState, lookup, MAP_OPS
from repro.dataflow.records import EDGE_HEADER, RECORD, pack_message


class TestGraphConstruction:
    def test_linear_pipeline_shape(self):
        g = StreamGraph()
        g.source("src").map("double").filter("even_keys").sink("sink")
        g.validate()
        assert [s.kind for s in g.stages] == ["source", "map", "filter",
                                              "sink"]
        # Forward-only construction: creation order is topological.
        for group in g.groups:
            assert all(dst > group.src for dst in group.dsts)

    def test_partition_materialises_lanes(self):
        g = StreamGraph()
        s = g.source("src")
        lanes = s.partition(3, by="hash").window(1_000, agg="max",
                                                 name="w")
        lanes.sink("sink")
        g.validate()
        names = [s.name for s in g.stages]
        assert names == ["src", "w.0", "w.1", "w.2", "sink"]
        fanout = g.downstream_groups(0)[0]
        assert fanout.selector == "hash"
        assert len(fanout.dsts) == 3
        # Gather: the sink takes one direct edge per lane.
        assert len(g.upstreams(4)) == 3

    def test_scatter_is_round_robin(self):
        g = StreamGraph()
        lanes = g.source("src").scatter(2).map("identity", name="m")
        lanes.sink()
        assert g.downstream_groups(0)[0].selector == "round_robin"

    def test_merge_connects_every_source(self):
        g = StreamGraph()
        streams = [g.source(f"s{i}") for i in range(3)]
        g.merge(streams).map("identity", name="m").sink()
        g.validate()
        assert g.upstreams(3) == [0, 1, 2]

    def test_lane_branch_indices(self):
        g = StreamGraph()
        lanes = g.source("src").partition(4).window(1_000, name="w")
        lanes.sink()
        branches = [s.branch for s in g.stages if s.name.startswith("w.")]
        assert branches == [0, 1, 2, 3]


class TestGraphValidation:
    def test_duplicate_stage_name_rejected(self):
        g = StreamGraph()
        g.source("src")
        with pytest.raises(ValueError, match="duplicate"):
            g.source("src")

    def test_dangling_source_rejected(self):
        g = StreamGraph()
        g.source("a").sink("sink")
        g.source("lonely")
        with pytest.raises(ValueError, match="feeds nothing"):
            g.validate()

    def test_sinkless_graph_rejected(self):
        g = StreamGraph()
        g.source("a").map("identity")
        with pytest.raises(ValueError, match="no sink"):
            g.validate()

    def test_unknown_map_op_rejected(self):
        g = StreamGraph()
        with pytest.raises(ValueError, match="unknown map op"):
            g.source("a").map("frobnicate")

    def test_unknown_aggregation_rejected(self):
        g = StreamGraph()
        with pytest.raises(ValueError, match="unknown aggregation"):
            g.source("a").window(1_000, agg="median")

    def test_bad_partition_selector_rejected(self):
        g = StreamGraph()
        with pytest.raises(ValueError, match="hash/round_robin"):
            g.source("a").partition(2, by="random")

    def test_slide_must_divide_width(self):
        g = StreamGraph()
        with pytest.raises(ValueError, match="divide"):
            g.source("a").window(1_000, slide_ns=300)

    def test_lookup_lists_choices(self):
        with pytest.raises(ValueError) as exc:
            lookup(MAP_OPS, "nope", "map op")
        assert "identity" in str(exc.value)


class TestWindowState:
    def test_tumbling_folds_per_key_and_flushes_lazily(self):
        w = WindowState(100, 0, "sum")
        assert w.add(1, 10, 1, ts=10, now=10) == []
        assert w.add(1, 5, 2, ts=60, now=60) == []
        # A record in the next bucket closes the previous window.
        out = w.add(2, 7, 1, ts=120, now=120)
        assert out == [(1, 15, 3, 60)]
        assert w.final_flush() == [(2, 7, 1, 120)]

    def test_sliding_window_attributes_each_count_once(self):
        w = WindowState(200, 100, "sum")      # k = 2 overlapping buckets
        w.add(1, 10, 1, ts=50, now=50)
        out1 = w.add(1, 20, 1, ts=150, now=150)
        out2 = w.add(2, 5, 1, ts=250, now=250)
        out3 = w.final_flush()
        everything = out1 + out2 + out3
        # Values span the full window; counts attributed exactly once.
        assert (1, 10, 1, 50) in everything       # window [-100, 100)
        assert (1, 30, 1, 150) in everything      # window [0, 200): 10+20
        assert sum(count for _, _, count, _ in everything) == 3

    def test_count_aggregation_merges_buckets_with_sum(self):
        w = WindowState(200, 100, "count")
        w.add(1, 99, 1, ts=50, now=50)
        w.add(1, 42, 1, ts=60, now=60)
        w.add(1, 7, 1, ts=150, now=150)
        everything = w.final_flush()
        # Window [0, 200) saw 3 records of key 1: count-agg value is 3,
        # not 2 + 1-via-the-fold (the bucket-merge must use sum).
        assert (1, 3, 1, 150) in everything

    def test_max_aggregation(self):
        w = WindowState(100, 0, "max")
        w.add(5, 3, 1, ts=1, now=1)
        w.add(5, 9, 1, ts=2, now=2)
        w.add(5, 4, 1, ts=3, now=3)
        assert w.final_flush() == [(5, 9, 3, 3)]

    def test_aggregates_emitted_in_sorted_key_order(self):
        w = WindowState(100, 0, "sum")
        for key in (9, 2, 7, 4):
            w.add(key, 1, 1, ts=1, now=1)
        keys = [key for key, _, _, _ in w.final_flush()]
        assert keys == sorted(keys)

    def test_empty_final_flush(self):
        assert WindowState(100, 0, "sum").final_flush() == []


class TestWireFormat:
    def test_message_packs_header_records_and_padding(self):
        records = [(1, 2, 3, 4), (5, 6, 7, 8)]
        msg = pack_message(7, records, flags=0, record_bytes=64)
        edge_id, n, flags = EDGE_HEADER.unpack_from(msg)
        assert (edge_id, n, flags) == (7, 2, 0)
        body = msg[EDGE_HEADER.size:EDGE_HEADER.size + 2 * RECORD.size]
        assert list(RECORD.iter_unpack(body)) == records
        # Padding to the per-record wire footprint beyond the 32 used.
        assert len(msg) == EDGE_HEADER.size + 2 * 64
