"""Pump fairness regression: a full co-hosted queue stalls only its lane.

The bug this pins (fixed in the round-robin pump): the per-node pump used
to deliver strictly in arrival order, so one record bound for a full
stage queue head-of-line blocked every later message for *other* stages
on the same node.  With a slow and a fast sink co-hosted, the fast sink
was paced by the slow sink's service time.  The fair pump keeps one
staging lane per destination stage and round-robins delivery, so the
fast sink drains at wire speed while the slow sink's lane alone carries
the backpressure.
"""

from __future__ import annotations

import pytest

import repro.dataflow.engine as engine_mod
from repro.cluster.cluster import Cluster
from repro.dataflow.engine import run_pipeline
from repro.dataflow.graph import StreamGraph
from repro.dataflow.stats import PipelineStats
from repro.workloads.runner import Scenario

#: Per-record service demand of the slow sink; the fast sink consumes
#: instantly.  80 records => >= 9.6 ms of serialised slow-sink work.
SLOW_WORK_NS = 120_000
N_RECORDS = 80
QUEUE_CAPACITY = 4


def co_hosted_graph() -> StreamGraph:
    """Two independent chains whose sinks share a node: stage ids are
    src_slow=0, src_fast=1, slow_sink=2, fast_sink=3 (creation order)."""
    graph = StreamGraph()
    graph.source("src_slow").sink("slow_sink", work_ns=SLOW_WORK_NS)
    graph.source("src_fast").sink("fast_sink", work_ns=0)
    graph.validate()
    return graph


#: Sources on nodes 1 and 2; both sinks co-hosted on node 0, so both
#: chains' records funnel through node 0's single pump.
PLACEMENT = {0: 1, 1: 2, 2: 0, 3: 0}


def run_co_hosted(monkeypatch):
    monkeypatch.setattr(engine_mod, "place_stages",
                        lambda graph, placement, n_nodes: dict(PLACEMENT))
    scenario = Scenario(
        name="pump-fairness", kind="pipeline", pipeline="scatter_gather",
        stage_placement="colocate", arrival="open-fixed", n_nodes=3,
        n_sources=2, branches=1, rate_rps=1_000_000.0,
        n_requests=N_RECORDS, req_bytes=64, work_ns=0, sink_work_ns=0,
        queue_capacity=QUEUE_CAPACITY, n_keys=8,
    )
    cluster = Cluster(scenario.n_nodes, fm_version=scenario.fm_version)
    stats = PipelineStats(cluster.env, name="pump-fairness")
    run = run_pipeline(cluster, scenario, stats, graph=co_hosted_graph())
    return run, stats


class TestPumpFairness:
    @pytest.fixture(scope="class")
    def run_and_stats(self, request):
        monkeypatch = pytest.MonkeyPatch()
        request.addfinalizer(monkeypatch.undo)
        return run_co_hosted(monkeypatch)

    def test_fast_stage_progresses_while_slow_queue_is_full(
            self, run_and_stats):
        run, _stats = run_and_stats
        done = {stage.spec.name: stage.stage_stats.done_ns
                for stage in run.stages}
        # The slow sink is busy for >= N_RECORDS * SLOW_WORK_NS.  Under
        # the head-of-line pump the fast sink's records trickled out on
        # the slow sink's schedule; fairness means the fast sink is long
        # done while the slow sink is still grinding through its queue.
        assert done["slow_sink"] >= N_RECORDS * SLOW_WORK_NS
        assert done["fast_sink"] < done["slow_sink"] / 3
        assert done["fast_sink"] < N_RECORDS * SLOW_WORK_NS / 2

    def test_slow_queue_was_actually_full(self, run_and_stats):
        run, _stats = run_and_stats
        depths = {stage.spec.name: stage.stage_stats.queue_depth_max
                  for stage in run.stages if stage.queue is not None}
        # The slow sink's bounded queue hit capacity (the stall is real)
        # and neither queue ever exceeded it (staging lanes don't break
        # the bound).
        assert depths["slow_sink"] == QUEUE_CAPACITY
        assert depths["fast_sink"] <= QUEUE_CAPACITY

    def test_zero_drops_and_conservation(self, run_and_stats):
        run, stats = run_and_stats
        # edge_report() raises if any edge lost records in flight.
        for row in run.edge_report():
            assert row["records"] == N_RECORDS, row
        assert stats.counters["delivered"] == 2 * N_RECORDS
        assert stats.counters["dropped"] == 0
        for stage in run.stages:
            if stage.spec.kind == "sink":
                assert stage.stage_stats.counters["received"] == N_RECORDS

    def test_backpressure_still_reaches_the_slow_source(self, run_and_stats):
        run, _stats = run_and_stats
        stalls = {stage.spec.name: stage.stage_stats.counters["credit_stalls"]
                  for stage in run.stages}
        # The slow chain's sender exhausts its credits (the lane bound
        # re-engages FM backpressure); sinks never stall on credits.
        assert stalls["src_slow"] > 0
        assert stalls["slow_sink"] == 0
        assert stalls["fast_sink"] == 0
