"""Backpressure regression: a slow sink bounds the whole pipeline.

The chain under test (the tentpole mechanism): the sink's bounded queue
fills -> its node's pump blocks on ``queue.put`` -> the FM receive region
fills -> credits stop flowing back -> the upstream stage stalls in
``acquire_credit`` -> *its* queue fills -> the stall propagates hop by
hop to the source.  Offered load yields to capacity with **zero drops**,
and every stall episode is attributed to the stage that stalled.
"""

from __future__ import annotations

from repro.workloads.runner import Scenario, run_scenario


def slow_sink_scenario(**overrides):
    """1 source -> 1 map lane -> a sink 25x slower than the offered load."""
    spec = dict(
        name="slow-sink", kind="pipeline", pipeline="scatter_gather",
        arrival="open-fixed", n_nodes=3, n_sources=1, branches=1,
        rate_rps=2_000_000.0, n_requests=120, req_bytes=64, work_ns=0,
        sink_work_ns=50_000, n_keys=8, queue_capacity=4,
    )
    spec.update(overrides)
    return Scenario(**spec)


class TestSlowSinkBackpressure:
    def test_zero_drops_and_conservation(self):
        results = run_scenario(slow_sink_scenario())["results"]
        assert results["records"]["dropped"] == 0
        assert results["conservation"]["ok"]
        assert results["conservation"]["sink_source_records"] == 120

    def test_bounded_queues_never_exceed_capacity(self):
        results = run_scenario(slow_sink_scenario())["results"]
        for stage in results["stages"]:
            assert stage["queue_depth_max"] <= 4, stage

    def test_stall_propagates_hop_by_hop_to_the_source(self):
        results = run_scenario(slow_sink_scenario())["results"]
        stages = {s["name"]: s for s in results["stages"]}
        # The lane feeding the slow sink stalls first...
        assert stages["work.0"]["credit_stalls"] > 0
        assert stages["work.0"]["credit_stall_ns"] > 0
        # ...and the stall reaches the source through the lane's own
        # bounded queue: credits are the backpressure, end to end.
        assert stages["source0"]["credit_stalls"] > 0
        # Sinks only consume; they never stall on credits.
        assert stages["sink"]["credit_stalls"] == 0

    def test_aggregate_stall_telemetry_matches_stage_sums(self):
        results = run_scenario(slow_sink_scenario())["results"]
        stages = results["stages"]
        assert results["credit_stalls"] == sum(
            s["credit_stalls"] for s in stages)
        assert results["credit_stall_ns"] == sum(
            s["credit_stall_ns"] for s in stages)

    def test_relieving_the_sink_removes_the_stalls(self):
        slow = run_scenario(slow_sink_scenario())["results"]
        fast = run_scenario(slow_sink_scenario(
            name="fast-sink", sink_work_ns=0,
            rate_rps=100_000.0))["results"]
        assert slow["credit_stalls"] > 0
        assert fast["credit_stalls"] == 0
        assert fast["conservation"]["ok"]
        # Backpressure costs wall-clock, not records.
        assert slow["elapsed_ns"] > fast["elapsed_ns"]
