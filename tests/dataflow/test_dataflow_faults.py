"""Dataflow under injected faults: stalls surface as telemetry, not hangs.

``dataflow-rollup-stall`` pins a NIC firmware stall (0.5 ms - 2.5 ms,
+20 us per packet event) on node 4 — an *interior* window lane under
spread placement.  The run must complete inside its ``until_ns`` deadline
(:meth:`Cluster.run` raises ``TimeoutError`` otherwise), conserve every
record with zero drops, and show the episode as credit-stall telemetry on
the stages whose sends crossed the slowed NIC.
"""

from __future__ import annotations

from repro.workloads.runner import PRESET_PLANS, PRESETS, run_scenario


def run_stall_preset(plan="preset"):
    scenario = PRESETS["dataflow-rollup-stall"]
    if plan == "preset":
        plan = PRESET_PLANS["dataflow-rollup-stall"]
    return scenario, run_scenario(scenario, plan=plan)


class TestNicStallOnInteriorStage:
    def test_completes_within_the_deadline_with_zero_drops(self):
        scenario, report = run_stall_preset()
        results = report["results"]
        assert scenario.until_ns is not None
        assert report["sim_end_ns"] <= scenario.until_ns
        assert results["records"]["dropped"] == 0
        assert results["conservation"]["ok"]
        for stage in results["stages"]:
            assert stage["done_ns"] is not None, stage["name"]

    def test_stall_surfaces_as_credit_stall_telemetry(self):
        _, report = run_stall_preset()
        results = report["results"]
        assert results["credit_stalls"] > 0
        assert results["credit_stall_ns"] > 0
        stages = {s["name"]: s for s in results["stages"]}
        # The stalled NIC (node 4) slows both directions: the sources
        # feeding the lane stall on withheld credits...
        episode = PRESET_PLANS["dataflow-rollup-stall"].episodes[0]
        victims = [s for s in results["stages"]
                   if s["kind"] == "source" and s["credit_stalls"] > 0]
        assert victims, "no source saw the stall"
        # ...and the lane on the stalled node backs up behind its own
        # slowed sends, filling its bounded queue.
        lane = next(s for s in results["stages"]
                    if s["node"] == episode.node)
        assert lane["queue_depth_max"] > stages["rollup.0"][
            "queue_depth_max"] or lane["credit_stalls"] > 0

    def test_fault_is_the_cause_the_clean_run_is_the_control(self):
        _, faulted = run_stall_preset()
        _, clean = run_stall_preset(plan=None)
        assert clean["results"]["credit_stalls"] == 0
        assert faulted["results"]["credit_stalls"] > 0
        # Same records conserved either way — the fault costs latency,
        # not records (the open-loop source schedule fixes the end time,
        # so the stall shows up in the tail, not the elapsed clock).
        assert (faulted["results"]["conservation"]
                == clean["results"]["conservation"])
        assert (faulted["results"]["latency"]["p99_ns"]
                > 2 * clean["results"]["latency"]["p99_ns"])
