"""Determinism pins: dataflow reports are pure functions of their spec."""

from __future__ import annotations

import pytest

from repro.obs.export import dumps_deterministic
from repro.workloads.runner import PRESET_PLANS, PRESETS, run_scenario

DATAFLOW_PRESETS = ("dataflow-rollup", "dataflow-scatter-gather")


def canonical(preset, plan=None, observe=False):
    return dumps_deterministic(
        run_scenario(PRESETS[preset], plan=plan, observe=observe))


class TestDataflowDeterminism:
    @pytest.mark.parametrize("preset", DATAFLOW_PRESETS)
    def test_rerun_is_byte_identical(self, preset):
        assert canonical(preset) == canonical(preset)

    @pytest.mark.parametrize("preset", DATAFLOW_PRESETS)
    def test_observer_does_not_perturb_the_report(self, preset):
        assert canonical(preset) == canonical(preset, observe=True)

    def test_fault_preset_rerun_is_byte_identical(self):
        plan = PRESET_PLANS["dataflow-rollup-stall"]
        first = canonical("dataflow-rollup-stall", plan=plan)
        assert first == canonical("dataflow-rollup-stall", plan=plan)

    def test_presets_really_exercise_both_pipelines(self):
        assert PRESETS["dataflow-rollup"].pipeline == "rollup"
        assert (PRESETS["dataflow-scatter-gather"].pipeline
                == "scatter_gather")
