"""Tests for the streaming dataflow engine (repro.dataflow)."""
