"""Software-reliability shim: correctness on clean and lossy networks."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.ext import SwRelParams, SwReliablePair


def run_transfer(payloads, ber=0.0, params=None):
    machine = PPRO_FM2.with_link(bit_error_rate=ber) if ber else PPRO_FM2
    cluster = Cluster(2, machine=machine, fm_version=2)
    pair = SwReliablePair(cluster, 0, 1, params=params)
    got = []
    sender_done = [False]

    def sender(node):
        for payload in payloads:
            yield from pair.send_message(payload)
        sender_done[0] = True

    def receiver(node):
        # The last-ACK problem: the receiver must keep servicing until the
        # sender's window is fully acknowledged, or a lost final ACK leaves
        # the sender retransmitting into a dead peer.
        while (len(got) < len(payloads)
               or not sender_done[0] or pair.outstanding):
            messages = yield from pair.deliver()
            got.extend(messages)
            if not messages:
                yield node.env.timeout(300)

    cluster.run([sender, receiver])
    return got, pair, cluster


class TestCleanNetwork:
    def test_single_message(self):
        got, pair, _cluster = run_transfer([b"hello reliable world"])
        assert got == [b"hello reliable world"]
        assert pair.retransmissions == 0

    def test_multi_packet_messages_in_order(self):
        payloads = [bytes([i]) * 2000 for i in range(8)]
        got, pair, _cluster = run_transfer(payloads)
        assert got == payloads
        assert pair.drops == 0

    def test_empty_message(self):
        got, _pair, _cluster = run_transfer([b""])
        assert got == [b""]

    def test_source_buffering_is_metered(self):
        """The copy FM never pays: every payload byte is copied into the
        retransmit buffer before transmission."""
        payloads = [bytes(3000)]
        _got, _pair, cluster = run_transfer(payloads)
        meter = cluster.node(0).cpu.meter
        assert meter.bytes_for("swrel.source_copy") == 3000

    def test_window_respected(self):
        params = SwRelParams(payload_bytes=256, window=2)
        payloads = [bytes(4096)]
        got, pair, _cluster = run_transfer(payloads, params=params)
        assert got == payloads

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SwRelParams(window=0)
        with pytest.raises(ValueError):
            SwRelParams(rto_ns=0)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        with pytest.raises(ValueError, match="differ"):
            SwReliablePair(cluster, 1, 1)
        with pytest.raises(ValueError, match="window"):
            SwReliablePair(cluster, 0, 1,
                           params=SwRelParams(window=100_000))


class TestLossyNetwork:
    @pytest.mark.parametrize("ber", [2e-5, 1e-4])
    def test_delivers_exactly_despite_loss(self, ber):
        payloads = [bytes((i * 7 + j) % 256 for j in range(1500))
                    for i in range(12)]
        got, pair, _cluster = run_transfer(payloads, ber=ber)
        assert got == payloads
        assert pair.retransmissions > 0
        assert pair.drops > 0

    def test_loss_rate_scales_retransmissions(self):
        payloads = [bytes(1500) for _ in range(12)]
        _g1, low, _c1 = run_transfer(payloads, ber=2e-5)
        _g2, high, _c2 = run_transfer(payloads, ber=2e-4)
        assert high.retransmissions > low.retransmissions

    def test_fm_fails_where_swrel_survives(self):
        """The §3.1 trade made concrete: on the same lossy network, FM
        raises (no recovery machinery) while the software protocol,
        paying its overheads, delivers everything."""
        from repro.core.common import FmCorruptionError
        ber = 1e-4
        payloads = [bytes(1500) for _ in range(12)]
        got, _pair, _cluster = run_transfer(payloads, ber=ber)
        assert got == payloads

        machine = PPRO_FM2.with_link(bit_error_rate=ber)
        cluster = Cluster(2, machine=machine, fm_version=2)

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1500)
            for _ in range(50):
                yield from node.fm.send_buffer(1, hid, buf, 1500)

        def receiver(node):
            while True:
                got_bytes = yield from node.fm.extract()
                if not got_bytes:
                    yield node.env.timeout(300)

        with pytest.raises(FmCorruptionError):
            cluster.run([sender, receiver], until_ns=10_000_000_000)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(st.binary(min_size=0, max_size=2500),
                         min_size=1, max_size=4),
       ber_index=st.integers(0, 2))
def test_any_payloads_any_loss_exactly_once_in_order(payloads, ber_index):
    ber = (0.0, 3e-5, 2e-4)[ber_index]
    got, _pair, _cluster = run_transfer(payloads, ber=ber)
    assert got == payloads
