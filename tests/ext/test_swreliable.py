"""Software-reliability shim: correctness on clean and lossy networks."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.ext import SwRelParams, SwReliablePair


def run_transfer(payloads, ber=0.0, drop_rate=0.0, params=None):
    machine = PPRO_FM2
    if ber or drop_rate:
        machine = PPRO_FM2.with_link(bit_error_rate=ber, drop_rate=drop_rate)
    cluster = Cluster(2, machine=machine, fm_version=2)
    pair = SwReliablePair(cluster, 0, 1, params=params)
    got = []
    sender_done = [False]

    def sender(node):
        for payload in payloads:
            yield from pair.send_message(payload)
        sender_done[0] = True

    def receiver(node):
        # The last-ACK problem: the receiver must keep servicing until the
        # sender's window is fully acknowledged, or a lost final ACK leaves
        # the sender retransmitting into a dead peer.
        while (len(got) < len(payloads)
               or not sender_done[0] or pair.outstanding):
            messages = yield from pair.deliver()
            got.extend(messages)
            if not messages:
                yield node.env.timeout(300)

    cluster.run([sender, receiver])
    return got, pair, cluster


class TestCleanNetwork:
    def test_single_message(self):
        got, pair, _cluster = run_transfer([b"hello reliable world"])
        assert got == [b"hello reliable world"]
        assert pair.retransmissions == 0

    def test_multi_packet_messages_in_order(self):
        payloads = [bytes([i]) * 2000 for i in range(8)]
        got, pair, _cluster = run_transfer(payloads)
        assert got == payloads
        assert pair.drops == 0

    def test_empty_message(self):
        got, _pair, _cluster = run_transfer([b""])
        assert got == [b""]

    def test_source_buffering_is_metered(self):
        """The copy FM never pays: every payload byte is copied into the
        retransmit buffer before transmission."""
        payloads = [bytes(3000)]
        _got, _pair, cluster = run_transfer(payloads)
        meter = cluster.node(0).cpu.meter
        assert meter.bytes_for("swrel.source_copy") == 3000

    def test_window_respected(self):
        params = SwRelParams(payload_bytes=256, window=2)
        payloads = [bytes(4096)]
        got, pair, _cluster = run_transfer(payloads, params=params)
        assert got == payloads

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SwRelParams(window=0)
        with pytest.raises(ValueError):
            SwRelParams(rto_ns=0)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        with pytest.raises(ValueError, match="differ"):
            SwReliablePair(cluster, 1, 1)
        with pytest.raises(ValueError, match="window"):
            SwReliablePair(cluster, 0, 1,
                           params=SwRelParams(window=100_000))


class TestLossyNetwork:
    @pytest.mark.parametrize("ber", [2e-5, 1e-4])
    def test_delivers_exactly_despite_loss(self, ber):
        payloads = [bytes((i * 7 + j) % 256 for j in range(1500))
                    for i in range(12)]
        got, pair, _cluster = run_transfer(payloads, ber=ber)
        assert got == payloads
        assert pair.retransmissions > 0
        assert pair.drops > 0

    def test_loss_rate_scales_retransmissions(self):
        payloads = [bytes(1500) for _ in range(12)]
        _g1, low, _c1 = run_transfer(payloads, ber=2e-5)
        _g2, high, _c2 = run_transfer(payloads, ber=2e-4)
        assert high.retransmissions > low.retransmissions

    def test_fm_fails_where_swrel_survives(self):
        """The §3.1 trade made concrete: on the same lossy network, FM
        raises (no recovery machinery) while the software protocol,
        paying its overheads, delivers everything."""
        from repro.core.common import FmCorruptionError
        ber = 1e-4
        payloads = [bytes(1500) for _ in range(12)]
        got, _pair, _cluster = run_transfer(payloads, ber=ber)
        assert got == payloads

        machine = PPRO_FM2.with_link(bit_error_rate=ber)
        cluster = Cluster(2, machine=machine, fm_version=2)

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1500)
            for _ in range(50):
                yield from node.fm.send_buffer(1, hid, buf, 1500)

        def receiver(node):
            while True:
                got_bytes = yield from node.fm.extract()
                if not got_bytes:
                    yield node.env.timeout(300)

        with pytest.raises(FmCorruptionError):
            cluster.run([sender, receiver], until_ns=10_000_000_000)


class TestResilienceRegressions:
    def test_long_transfer_survives_tight_give_up_under_sustained_ber(self):
        """Regression: the give-up clock must reset whenever the window
        advances.  A transfer whose *total* duration far exceeds
        ``give_up_ns`` completes as long as ACK progress keeps arriving —
        only a genuinely stuck channel may trip the bound."""
        params = SwRelParams(give_up_ns=1_500_000)
        payloads = [bytes((i * 13) % 256 for i in range(100_000))]
        got, pair, cluster = run_transfer(payloads, ber=1e-4, params=params)
        assert got == payloads
        assert pair.retransmissions > 0           # the loss was real
        assert cluster.now > params.give_up_ns    # total >> bound, still done
        assert pair.max_progress_gap_ns < params.give_up_ns

    def test_dead_channel_raises_instead_of_spinning(self):
        """Regression: both the window-wait loop in send_message and drain
        are bounded — a channel that drops everything raises instead of
        burning simulated time forever."""
        machine = PPRO_FM2.with_link(drop_rate=1.0)
        cluster = Cluster(2, machine=machine, fm_version=2)
        params = SwRelParams(give_up_ns=3_000_000)
        pair = SwReliablePair(cluster, 0, 1, params=params)
        failure = []

        def sender(node):
            try:
                yield from pair.send_message(b"x" * 2000)
            except RuntimeError as err:
                failure.append(err)

        cluster.run([sender, None])
        assert failure, "sender never gave up on a dead channel"
        assert "gave up" in str(failure[0])
        assert pair.timeouts >= 2
        # Exponential backoff kicked in while the channel stayed silent.
        assert pair.rto_ns > params.rto_ns

    def test_adaptive_rto_tracks_the_measured_rtt(self):
        payloads = [bytes(1500) for _ in range(8)]
        _got, pair, _cluster = run_transfer(payloads)
        stats = pair.stats()
        assert stats["srtt_ns"] > 0
        assert stats["acks_received"] > 0
        assert stats["retransmissions"] == 0
        assert stats["wasted_fraction"] == 0.0
        assert stats["delivered_bytes"] == sum(len(p) for p in payloads)
        assert pair.params.min_rto_ns <= stats["rto_ns"] <= pair.params.max_rto_ns

    def test_fast_retransmit_fires_on_duplicate_acks(self):
        payloads = [bytes((i * 31 + j) % 256 for j in range(6000))
                    for i in range(6)]
        got, pair, _cluster = run_transfer(payloads, drop_rate=0.08)
        assert got == payloads
        assert pair.fast_retransmits > 0
        stats = pair.stats()
        assert stats["retransmitted_wire_bytes"] > 0
        assert 0.0 < stats["wasted_fraction"] < 1.0

    def test_drop_mode_delivers_exactly(self):
        payloads = [bytes([i]) * 1800 for i in range(10)]
        got, pair, _cluster = run_transfer(payloads, drop_rate=0.05)
        assert got == payloads
        assert pair.retransmissions > 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(st.binary(min_size=0, max_size=2500),
                         min_size=1, max_size=4),
       ber_index=st.integers(0, 2))
def test_any_payloads_any_loss_exactly_once_in_order(payloads, ber_index):
    ber = (0.0, 3e-5, 2e-4)[ber_index]
    got, _pair, _cluster = run_transfer(payloads, ber=ber)
    assert got == payloads
