"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1
from repro.simkernel.env import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def fm1_cluster() -> Cluster:
    """A two-node FM 1.x cluster on the Sparc testbed config."""
    return Cluster(2, machine=SPARC_FM1, fm_version=1)


@pytest.fixture
def fm2_cluster() -> Cluster:
    """A two-node FM 2.x cluster on the PPro testbed config."""
    return Cluster(2, machine=PPRO_FM2, fm_version=2)


def run_to_end(cluster: Cluster, programs, until_ns=None):
    """Run programs on a cluster; thin wrapper kept for test readability."""
    return cluster.run(programs, until_ns=until_ns)


def drain_receiver(node, done, idle_ns: int = 500):
    """A standard receiver loop: extract until ``done()`` returns True."""
    def program(n):
        while not done():
            got = yield from n.fm.extract()
            if not got:
                yield n.env.timeout(idle_ns)
    return program(node) if node is not None else program
