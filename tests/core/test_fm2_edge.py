"""FM 2.x edge cases: handler failures, concurrent send streams,
re-entrancy, statistics."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmProtocolError


class TestHandlerFailures:
    def test_handler_exception_propagates_to_extract(self, fm2_cluster):
        def handler(fm, stream, src):
            yield from stream.receive_bytes(4)
            raise RuntimeError("handler blew up")

        hid = {n.fm.register_handler(handler) for n in fm2_cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(16)
            yield from node.fm.send_buffer(1, hid, buf, 16)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        with pytest.raises(RuntimeError, match="handler blew up"):
            fm2_cluster.run([sender, receiver], until_ns=100_000_000)

    def test_handler_protocol_misuse_propagates(self, fm2_cluster):
        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes + 5)

        hid = {n.fm.register_handler(handler) for n in fm2_cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(8)
            yield from node.fm.send_buffer(1, hid, buf, 8)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        with pytest.raises(FmProtocolError, match="exceeds"):
            fm2_cluster.run([sender, receiver], until_ns=100_000_000)


class TestConcurrentSendStreams:
    def test_two_open_streams_to_different_destinations(self):
        """FM 2.x allows interleaving pieces of messages to different
        destinations — each stream keeps its own packet state."""
        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        out = {}

        def handler(fm, stream, src):
            out[stream.fm.node_id] = (yield from
                                      stream.receive_bytes(stream.msg_bytes))

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        payload_a = bytes([1]) * 1500
        payload_b = bytes([2]) * 1500

        def sender(node):
            buf_a = node.buffer(1500, fill=payload_a)
            buf_b = node.buffer(1500, fill=payload_b)
            stream_a = yield from node.fm.begin_message(1, 1500, hid)
            stream_b = yield from node.fm.begin_message(2, 1500, hid)
            # Interleave pieces of the two messages.
            yield from node.fm.send_piece(stream_a, buf_a, 0, 700)
            yield from node.fm.send_piece(stream_b, buf_b, 0, 900)
            yield from node.fm.send_piece(stream_a, buf_a, 700, 800)
            yield from node.fm.send_piece(stream_b, buf_b, 900, 600)
            yield from node.fm.end_message(stream_b)
            yield from node.fm.end_message(stream_a)

        def make_receiver(me):
            def receiver(node):
                while me not in out:
                    got = yield from node.fm.extract()
                    if not got:
                        yield node.env.timeout(500)
            return receiver

        cluster.run([sender, make_receiver(1), make_receiver(2)])
        assert out[1] == payload_a
        assert out[2] == payload_b

    def test_two_open_streams_to_same_destination(self, fm2_cluster):
        """Two interleaved messages to one destination demultiplex by
        message id on the receive side."""
        out = []

        def handler(fm, stream, src):
            out.append((yield from stream.receive_bytes(stream.msg_bytes)))

        hid = {n.fm.register_handler(handler)
               for n in fm2_cluster.nodes}.pop()
        first = bytes([7]) * 1200
        second = bytes([9]) * 1200

        def sender(node):
            buf1 = node.buffer(1200, fill=first)
            buf2 = node.buffer(1200, fill=second)
            s1 = yield from node.fm.begin_message(1, 1200, hid)
            s2 = yield from node.fm.begin_message(1, 1200, hid)
            yield from node.fm.send_piece(s1, buf1, 0, 600)
            yield from node.fm.send_piece(s2, buf2, 0, 1200)
            yield from node.fm.end_message(s2)
            yield from node.fm.send_piece(s1, buf1, 600, 600)
            yield from node.fm.end_message(s1)

        def receiver(node):
            while len(out) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm2_cluster.run([sender, receiver])
        assert sorted(out) == sorted([first, second])


class TestStatistics:
    def test_message_and_packet_counters(self, fm2_cluster):
        done = []

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            done.append(1)

        hid = {n.fm.register_handler(handler)
               for n in fm2_cluster.nodes}.pop()
        packet = fm2_cluster.fm_params.packet_payload

        def sender(node):
            buf = node.buffer(packet * 3)
            for _ in range(4):
                yield from node.fm.send_buffer(1, hid, buf, packet * 3)

        def receiver(node):
            while len(done) < 4:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm2_cluster.run([sender, receiver])
        fm0, fm1 = fm2_cluster.node(0).fm, fm2_cluster.node(1).fm
        assert fm0.stats_sent_messages == 4
        assert fm0.stats_sent_packets >= 12      # 3 data packets x 4 (+credits)
        assert fm1.stats_recv_messages == 4
        assert fm1.stats_recv_packets == 12

    def test_repr_smoke(self, fm2_cluster):
        assert "FM2" in repr(fm2_cluster.node(0).fm)
        assert "Cluster" in repr(fm2_cluster)
        assert "Node" in repr(fm2_cluster.node(0))
