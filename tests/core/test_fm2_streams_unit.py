"""Unit-level accessors and state of the FM 2.x stream objects."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmProtocolError
from repro.core.fm2.stream import RecvStream, SendStream


class TestSendStreamState:
    def test_remaining_tracks_pushes(self, fm2_cluster):
        node = fm2_cluster.node(0)
        hid = node.fm.register_handler(lambda fm, s, src: iter(()))

        def program(n):
            buf = n.buffer(300)
            stream = yield from n.fm.begin_message(1, 300, hid)
            assert stream.remaining == 300
            yield from n.fm.send_piece(stream, buf, 0, 120)
            assert stream.remaining == 180
            yield from n.fm.send_piece(stream, buf, 120, 180)
            assert stream.remaining == 0
            yield from n.fm.end_message(stream)
            assert stream.closed
            return stream.msg_id

        msg_id = fm2_cluster.run([program, None])[0]
        assert msg_id == 0

    def test_negative_piece_rejected(self, fm2_cluster):
        node = fm2_cluster.node(0)
        hid = node.fm.register_handler(lambda fm, s, src: iter(()))

        def program(n):
            buf = n.buffer(10)
            stream = yield from n.fm.begin_message(1, 10, hid)
            yield from n.fm.send_piece(stream, buf, 0, -1)

        with pytest.raises(FmProtocolError, match="negative"):
            fm2_cluster.run([program, None])

    def test_msg_ids_sequential_per_destination(self, fm2_cluster):
        def noop_handler(fm, stream, src):
            return
            yield  # pragma: no cover - generator marker

        hid = {n.fm.register_handler(noop_handler)
               for n in fm2_cluster.nodes}.pop()

        def program(n):
            ids = []
            for _ in range(3):
                stream = yield from n.fm.begin_message(1, 0, hid)
                ids.append(stream.msg_id)
                yield from n.fm.end_message(stream)
            return ids

        # Receiver must drain so the run terminates cleanly.
        def receiver(n):
            while n.fm.stats_recv_messages < 3:
                got = yield from n.fm.extract()
                if not got:
                    yield n.env.timeout(500)

        ids = fm2_cluster.run([program, receiver])[0]
        assert ids == [0, 1, 2]


class TestRecvStreamState:
    def test_progress_accessors_during_receive(self, fm2_cluster):
        observations = []

        def handler(fm, stream, src):
            observations.append(("at-start", stream.available(),
                                 stream.remaining))
            yield from stream.receive_bytes(100)
            observations.append(("after-100", stream.consumed_bytes,
                                 stream.remaining))
            yield from stream.receive_bytes(stream.msg_bytes - 100)
            observations.append(("at-end", stream.consumed_bytes,
                                 stream.complete))

        hid = {n.fm.register_handler(handler)
               for n in fm2_cluster.nodes}.pop()
        size = 2500

        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)

        def receiver(node):
            while len(observations) < 3:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm2_cluster.run([sender, receiver])
        label, available, remaining = observations[0]
        assert remaining == size
        assert available <= size
        assert observations[1] == ("after-100", 100, size - 100)
        assert observations[2] == ("at-end", size, True)

    def test_repr_smoke(self, fm2_cluster):
        stream = SendStream(fm2_cluster.node(0).fm, 1, 0, 10)
        assert "10" in repr(RecvStream(fm2_cluster.node(1).fm, 0, 0, 0, 10))
        assert stream.msg_bytes == 10
