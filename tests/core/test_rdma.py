"""One-sided RDMA verbs: registration, put/get delivery, bypass of the
FM receive path, error handling, determinism."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.rdma import RdmaEndpoint, RdmaError


@pytest.fixture
def rdma_cluster() -> Cluster:
    return Cluster(2, machine=PPRO_FM2, fm_version=2)


def endpoints(cluster):
    return [RdmaEndpoint(node) for node in cluster.nodes]


class TestRegistration:
    def test_register_returns_fresh_rkeys(self, rdma_cluster):
        ep = endpoints(rdma_cluster)[0]
        keys = []
        def program(node):
            keys.append((yield from ep.register(node.buffer(256))))
            keys.append((yield from ep.register(node.buffer(256))))
        rdma_cluster.run([program, None])
        assert keys == [1, 2]
        assert set(rdma_cluster.node(0).nic.regions) == {1, 2}

    def test_registration_pins_the_buffer(self, rdma_cluster):
        ep = endpoints(rdma_cluster)[0]
        buf = rdma_cluster.node(0).buffer(256)
        def program(node):
            yield from ep.register(buf)
        rdma_cluster.run([program, None])
        assert buf.pinned

    def test_deregister_removes_the_region(self, rdma_cluster):
        ep = endpoints(rdma_cluster)[0]
        def program(node):
            rkey = yield from ep.register(node.buffer(256))
            yield from ep.deregister(rkey)
        rdma_cluster.run([program, None])
        assert rdma_cluster.node(0).nic.regions == {}

    def test_duplicate_rkey_rejected(self, rdma_cluster):
        nic = rdma_cluster.node(0).nic
        nic.register_region(7, rdma_cluster.node(0).buffer(64))
        with pytest.raises(ValueError):
            nic.register_region(7, rdma_cluster.node(0).buffer(64))


class TestPut:
    def test_put_lands_bytes_at_remote_offset(self, rdma_cluster):
        eps = endpoints(rdma_cluster)
        region = rdma_cluster.node(1).buffer(8192)
        payload = bytes(i % 251 for i in range(4096))
        def target(node):
            yield from eps[1].register(region)          # rkey 1
        def initiator(node):
            yield node.env.timeout(10_000)              # after registration
            src = node.buffer(4096, fill=payload)
            yield from eps[0].rdma_put(1, 1, src, 4096, remote_offset=512)
            # Wait for the remote write completion to drain the wire.
            yield node.env.timeout(200_000)
        rdma_cluster.run([initiator, target])
        assert region.read(512, 4096) == payload
        assert region.read(0, 512) == b"\x00" * 512
        nic = rdma_cluster.node(1).nic
        assert nic.rdma_write_bytes == 4096
        assert nic.rdma_unmatched == 0

    def test_put_bypasses_the_fm_receive_path(self, rdma_cluster):
        """The whole point of one-sided: no handler ran, no receive-region
        slot was consumed, no credit was spent."""
        eps = endpoints(rdma_cluster)
        node0, node1 = rdma_cluster.nodes
        credits_before = dict(node0.fm._credits)
        def target(node):
            yield from eps[1].register(node.buffer(4096))
        def initiator(node):
            yield node.env.timeout(10_000)
            src = node.buffer(2048, fill=b"y" * 2048)
            yield from eps[0].rdma_put(1, 1, src, 2048)
            yield node.env.timeout(200_000)
        rdma_cluster.run([initiator, target])
        assert node0.fm._credits == credits_before
        assert node1.nic.recv_region.level == 0
        assert node1.fm.stats_recv_messages == 0
        assert node1.fm.stats_recv_packets == 0

    def test_unmatched_rkey_counts_and_drops(self, rdma_cluster):
        eps = endpoints(rdma_cluster)
        def initiator(node):
            src = node.buffer(64, fill=b"z" * 64)
            yield from eps[0].rdma_put(1, 99, src, 64)
            yield node.env.timeout(100_000)
        rdma_cluster.run([initiator, None])
        nic = rdma_cluster.node(1).nic
        assert nic.rdma_unmatched == 1
        assert nic.rdma_write_bytes == 0

    def test_put_past_region_end_counts_unmatched(self, rdma_cluster):
        eps = endpoints(rdma_cluster)
        def target(node):
            yield from eps[1].register(node.buffer(128))
        def initiator(node):
            yield node.env.timeout(10_000)
            src = node.buffer(256, fill=b"w" * 256)
            yield from eps[0].rdma_put(1, 1, src, 256, remote_offset=0)
            yield node.env.timeout(100_000)
        rdma_cluster.run([initiator, target])
        assert rdma_cluster.node(1).nic.rdma_unmatched > 0

    def test_self_put_rejected(self, rdma_cluster):
        ep = endpoints(rdma_cluster)[0]
        def program(node):
            yield from ep.rdma_put(0, 1, node.buffer(64), 64)
        with pytest.raises(RdmaError):
            rdma_cluster.run([program, None])

    def test_put_larger_than_buffer_rejected(self, rdma_cluster):
        ep = endpoints(rdma_cluster)[0]
        def program(node):
            yield from ep.rdma_put(1, 1, node.buffer(64), 65)
        with pytest.raises(RdmaError):
            rdma_cluster.run([program, None])


class TestGet:
    def test_get_round_trips_remote_bytes(self, rdma_cluster):
        eps = endpoints(rdma_cluster)
        payload = bytes((i * 7) % 256 for i in range(2048))
        sink = rdma_cluster.node(0).buffer(4096)
        def target(node):
            region = node.buffer(4096, fill=payload + b"\x00" * 2048)
            yield from eps[1].register(region)
        def initiator(node):
            yield node.env.timeout(10_000)
            yield from eps[0].rdma_get(1, 1, sink, 2048, local_offset=1024)
        rdma_cluster.run([initiator, target])
        assert sink.read(1024, 2048) == payload
        assert rdma_cluster.node(1).nic.rdma_reads_served == 1
        assert rdma_cluster.node(1).nic.rdma_read_bytes == 2048

    def test_get_blocks_until_data_has_landed(self, rdma_cluster):
        eps = endpoints(rdma_cluster)
        t_done = []
        def target(node):
            yield from eps[1].register(node.buffer(65536, fill=b"q" * 65536))
        def initiator(node):
            yield node.env.timeout(10_000)
            sink = node.buffer(65536)
            yield from eps[0].rdma_get(1, 1, sink, 65536)
            t_done.append(node.env.now)
            assert sink.read() == b"q" * 65536
        rdma_cluster.run([initiator, target])
        # 64 KB over a 160 MB/s link alone is > 400 us: the verb really
        # waited for the payload, not just the request round-trip.
        assert t_done[0] > 400_000


class TestDeterminism:
    def run_once(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        eps = endpoints(cluster)
        def target(node):
            yield from eps[1].register(node.buffer(8192))
        def initiator(node):
            yield node.env.timeout(10_000)
            src = node.buffer(8192, fill=bytes(i % 256 for i in range(8192)))
            yield from eps[0].rdma_put(1, 1, src, 8192)
            sink = node.buffer(4096)
            yield from eps[0].rdma_get(1, 1, sink, 4096, remote_offset=2048)
            yield node.env.timeout(100_000)
        cluster.run([initiator, target])
        nic = cluster.node(1).nic
        return (cluster.env.now, eps[0].stats_put_bytes,
                eps[0].stats_get_bytes, nic.rdma_write_bytes,
                nic.rdma_read_bytes)

    def test_reruns_are_identical(self):
        assert self.run_once() == self.run_once()
