"""Property-based tests of the FM layers' delivery invariants.

These are the guarantees of §3.1 — reliable, in-order, exactly-once
delivery — checked under randomly generated workloads: arbitrary message
sizes, arbitrary gather decompositions on the sender, arbitrary scatter
decompositions on the receiver, arbitrary extract budgets.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1

# Simulation-heavy property tests: few, well-chosen examples.
SIM_SETTINGS = settings(max_examples=15, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow])


def payload_of(size: int, seed: int) -> bytes:
    return bytes((i * 31 + seed) % 256 for i in range(size))


@st.composite
def decomposition(draw, total):
    """A random split of `total` bytes into positive pieces."""
    pieces = []
    remaining = total
    while remaining > 0:
        piece = draw(st.integers(min_value=1, max_value=remaining))
        pieces.append(piece)
        remaining -= piece
    return pieces


@SIM_SETTINGS
@given(data=st.data())
def test_fm2_arbitrary_gather_scatter_roundtrip(data):
    """Any sender decomposition x any receiver decomposition x any payload
    delivers exactly the sent bytes."""
    size = data.draw(st.integers(min_value=1, max_value=5000), label="size")
    seed = data.draw(st.integers(min_value=0, max_value=255), label="seed")
    send_pieces = data.draw(decomposition(size), label="send_pieces")
    recv_pieces = data.draw(decomposition(size), label="recv_pieces")
    payload = payload_of(size, seed)

    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    out = []

    def handler(fm, stream, src):
        chunks = []
        for piece in recv_pieces:
            chunks.append((yield from stream.receive_bytes(piece)))
        out.append(b"".join(chunks))

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

    def sender(node):
        buf = node.buffer(size, fill=payload)
        stream = yield from node.fm.begin_message(1, size, hid)
        offset = 0
        for piece in send_pieces:
            yield from node.fm.send_piece(stream, buf, offset, piece)
            offset += piece
        yield from node.fm.end_message(stream)

    def receiver(node):
        while not out:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)

    cluster.run([sender, receiver])
    assert out[0] == payload


@SIM_SETTINGS
@given(sizes=st.lists(st.integers(min_value=0, max_value=2000),
                      min_size=1, max_size=10),
       fm_version=st.sampled_from([1, 2]))
def test_per_sender_fifo_and_exactly_once(sizes, fm_version):
    """A random schedule of messages arrives exactly once, in send order."""
    machine = SPARC_FM1 if fm_version == 1 else PPRO_FM2
    cluster = Cluster(2, machine=machine, fm_version=fm_version)
    log = []
    payloads = [payload_of(size, index % 256)
                for index, size in enumerate(sizes)]

    if fm_version == 1:
        def handler(fm, src, staging, nbytes):
            log.append(staging.read(0, nbytes))
            return
            yield  # pragma: no cover
    else:
        def handler(fm, stream, src):
            log.append((yield from stream.receive_bytes(stream.msg_bytes)))

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

    def sender(node):
        for payload in payloads:
            buf = node.buffer(max(len(payload), 1), fill=payload)
            if fm_version == 1:
                yield from node.fm.send(1, hid, buf, len(payload))
            else:
                yield from node.fm.send_buffer(1, hid, buf, len(payload))

    def receiver(node):
        while len(log) < len(payloads):
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)

    cluster.run([sender, receiver])
    assert log == payloads


@SIM_SETTINGS
@given(budget=st.integers(min_value=1, max_value=4096),
       n_messages=st.integers(min_value=1, max_value=8))
def test_fm2_any_extract_budget_delivers_everything(budget, n_messages):
    """Receiver pacing changes timing, never delivery."""
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    out = []

    def handler(fm, stream, src):
        out.append((yield from stream.receive_bytes(stream.msg_bytes)))

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
    payloads = [payload_of(700 + 13 * i, i) for i in range(n_messages)]

    def sender(node):
        for payload in payloads:
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send_buffer(1, hid, buf, len(payload))

    def receiver(node):
        while len(out) < n_messages:
            got = yield from node.fm.extract(max_bytes=budget)
            if not got:
                yield node.env.timeout(500)

    cluster.run([sender, receiver])
    assert out == payloads


@SIM_SETTINGS
@given(n_messages=st.integers(min_value=1, max_value=12),
       size=st.integers(min_value=1, max_value=3000))
def test_credits_conserved(n_messages, size):
    """After quiescence, outstanding credits equal unreturned batches."""
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    out = []

    def handler(fm, stream, src):
        out.append((yield from stream.receive_bytes(stream.msg_bytes)))

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

    def sender(node):
        buf = node.buffer(size)
        for _ in range(n_messages):
            yield from node.fm.send_buffer(1, hid, buf, size)

    def receiver(node):
        while len(out) < n_messages:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)
        yield node.env.timeout(100_000)   # let credit returns land

    cluster.run([sender, receiver])
    fm0, fm1 = cluster.node(0).fm, cluster.node(1).fm
    packets = fm0.stats_sent_packets
    returned = packets - fm1._pending_returns.get(0, 0)
    # Outstanding = sent − returned; never negative, never above the cap.
    outstanding = fm0.outstanding_credits(1)
    assert outstanding == packets - returned
    assert 0 <= outstanding < fm0.params.credits_per_peer
