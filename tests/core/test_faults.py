"""Fault injection and robustness: what breaks, and how loudly.

FM's reliability is *constructed* from network properties (§3.1); these
tests verify both directions: with a clean network nothing is ever lost
under adversarial timing, and with injected faults the failure is
immediate and explicit (FM has no recovery machinery to mask bugs).
"""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1
from repro.core.common import (
    FmCorruptionError,
    FmParams,
    FmStalledError,
)


def collect2(log):
    def handler(fm, stream, src):
        log.append((yield from stream.receive_bytes(stream.msg_bytes)))
    return handler


class TestCorruption:
    def test_fm2_detects_corruption(self):
        machine = PPRO_FM2.with_link(bit_error_rate=1e-4)
        cluster = Cluster(2, machine=machine, fm_version=2)
        log = []
        hid = {n.fm.register_handler(collect2(log)) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1024)
            for _ in range(300):
                yield from node.fm.send_buffer(1, hid, buf, 1024)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        with pytest.raises(FmCorruptionError, match="no recovery"):
            cluster.run([sender, receiver], until_ns=10_000_000_000)

    def test_corruption_is_deterministic(self):
        """Same seed-free model, same run: the failure time is identical."""
        def run_once():
            machine = PPRO_FM2.with_link(bit_error_rate=1e-4)
            cluster = Cluster(2, machine=machine, fm_version=2)
            log = []
            hid = {n.fm.register_handler(collect2(log))
                   for n in cluster.nodes}.pop()

            def sender(node):
                buf = node.buffer(1024)
                for _ in range(300):
                    yield from node.fm.send_buffer(1, hid, buf, 1024)

            def receiver(node):
                while True:
                    got = yield from node.fm.extract()
                    if not got:
                        yield node.env.timeout(500)

            try:
                cluster.run([sender, receiver], until_ns=10_000_000_000)
            except FmCorruptionError:
                return cluster.now
            return None

        first, second = run_once(), run_once()
        assert first is not None
        assert first == second

    def test_clean_network_never_corrupts(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = {n.fm.register_handler(collect2(log)) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(2048)
            for _ in range(50):
                yield from node.fm.send_buffer(1, hid, buf, 2048)

        def receiver(node):
            while len(log) < 50:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        cluster.run([sender, receiver])
        assert len(log) == 50


class TestStalls:
    def test_fm2_sender_stall_is_loud(self):
        params = FmParams(packet_payload=1024, credits_per_peer=2,
                          credit_batch=1, stall_limit_ns=500_000)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2, fm_params=params)
        hid = {n.fm.register_handler(collect2([])) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1024)
            for _ in range(10):   # receiver never extracts
                yield from node.fm.send_buffer(1, hid, buf, 1024)

        with pytest.raises(FmStalledError, match="deadlock"):
            cluster.run([sender, None])

    def test_stall_hook_rescues_bidirectional_exchange(self):
        """Two nodes flooding each other beyond their credit windows make
        progress only because the stall hook services the receive side —
        the interlayer-scheduling discipline (§4.1)."""
        params = FmParams(packet_payload=256, credits_per_peer=2,
                          credit_batch=1, stall_limit_ns=50_000_000)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2, fm_params=params)
        received = [0, 0]

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            received[stream.fm.node_id] += 1

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        n_messages = 10

        def make_program(me: int, peer: int):
            def program(node):
                # Install the rescue hook: drain while stalled on credits.
                def hook():
                    got = yield from node.fm.extract(max_bytes=2048)
                node.fm.stall_hook = hook
                buf = node.buffer(1024)
                for _ in range(n_messages):
                    yield from node.fm.send_buffer(peer, hid, buf, 1024)
                while received[me] < n_messages:
                    got = yield from node.fm.extract()
                    if not got:
                        yield node.env.timeout(500)
            return program

        cluster.run([make_program(0, 1), make_program(1, 0)])
        assert received == [n_messages, n_messages]

    def test_without_hook_bidirectional_flood_deadlocks(self):
        params = FmParams(packet_payload=256, credits_per_peer=2,
                          credit_batch=1, stall_limit_ns=500_000)
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2, fm_params=params)
        hid = {n.fm.register_handler(collect2([])) for n in cluster.nodes}.pop()

        def make_program(peer: int):
            def program(node):
                buf = node.buffer(1024)
                for _ in range(10):
                    yield from node.fm.send_buffer(peer, hid, buf, 1024)
            return program

        with pytest.raises(FmStalledError):
            cluster.run([make_program(1), make_program(0)])


class TestBackpressureIntegrity:
    def test_receiver_that_never_extracts_loses_nothing(self):
        """Packets beyond the credit window wait at the sender; packets in
        flight land in the receive region; nothing is dropped anywhere."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = {n.fm.register_handler(collect2(log)) for n in cluster.nodes}.pop()
        payloads = [bytes([i]) * 700 for i in range(10)]

        def sender(node):
            for payload in payloads:
                buf = node.buffer(len(payload), fill=payload)
                yield from node.fm.send_buffer(1, hid, buf, len(payload))

        def lazy_receiver(node):
            yield node.env.timeout(2_000_000)   # 2 ms of neglect
            while len(log) < len(payloads):
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        cluster.run([sender, lazy_receiver])
        assert log == payloads

    def test_fm1_same_guarantee(self):
        cluster = Cluster(2, machine=SPARC_FM1, fm_version=1)
        log = []

        def handler(fm, src, staging, nbytes):
            log.append(staging.read(0, nbytes))
            return
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        payloads = [bytes([i]) * 300 for i in range(8)]

        def sender(node):
            for payload in payloads:
                buf = node.buffer(len(payload), fill=payload)
                yield from node.fm.send(1, hid, buf, len(payload))

        def lazy_receiver(node):
            yield node.env.timeout(2_000_000)
            while len(log) < len(payloads):
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        cluster.run([sender, lazy_receiver])
        assert log == payloads
