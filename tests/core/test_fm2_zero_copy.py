"""Zero-copy payload plumbing must be invisible at the byte level.

The hot-path overhaul made packetization slice ``memoryview``s over the
sender's buffer and made reassembly alias packet payloads instead of staging
them through temporary buffers.  These property-style tests pin down the
observable contract: for every message size from 1 B to 64 KB, under every
piece/receive split, the bytes delivered are exactly the bytes sent — and
mutating the source buffer after the send API returns must not retroactively
change a message in flight (Packet construction is the snapshot point).
The CRC/CORRUPT fault-injection path is exercised on top of the same
plumbing: corruption is still detected and still deterministic.
"""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmCorruptionError
from repro.hardware.memory import Buffer
from repro.hardware.packet import Packet, PacketFlags, PacketHeader, compute_crc


def pattern(size: int, salt: int = 0) -> bytes:
    """Deterministic non-repeating-ish payload (distinct across salts)."""
    return bytes((i * 131 + salt) % 256 for i in range(size))


def collect_handler(log):
    def handler(fm, stream, src):
        data = yield from stream.receive_bytes(stream.msg_bytes)
        log.append(data)
    return handler


def chunked_handler(log, chunk: int):
    """Handler that consumes in fixed odd-sized receives (split-chunk path)."""
    def handler(fm, stream, src):
        parts = []
        remaining = stream.msg_bytes
        while remaining:
            take = min(chunk, remaining)
            parts.append((yield from stream.receive_bytes(take)))
            remaining -= take
        log.append(b"".join(parts))
    return handler


def register_all(cluster, handler):
    ids = {n.fm.register_handler(handler) for n in cluster.nodes}
    assert len(ids) == 1
    return ids.pop()


def receiver_until(count, log):
    def program(node):
        while len(log) < count:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)
    return program


# 1 B .. 64 KB: below / at / above the packet payload, straddling multiples.
SIZES = [1, 2, 3, 16, 255, 1023, 1024, 1025, 2048, 4099, 16384, 65536]


class TestReassemblyByteIdentity:
    @pytest.mark.parametrize("size", SIZES)
    def test_single_piece_roundtrip(self, size):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = register_all(cluster, collect_handler(log))
        payload = pattern(size)

        def sender(node):
            buf = node.buffer(size, fill=payload)
            yield from node.fm.send_buffer(1, hid, buf, size)

        cluster.run([sender, receiver_until(1, log)])
        assert log == [payload]

    @pytest.mark.parametrize("size", [1023, 1025, 4099, 65536])
    def test_odd_piece_splits_roundtrip(self, size):
        """Pieces that straddle packet boundaries exercise the fill path."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = register_all(cluster, collect_handler(log))
        payload = pattern(size, salt=7)
        pieces = []
        remaining, step = size, 1
        while remaining:
            take = min(step, remaining)
            pieces.append(take)
            remaining -= take
            step = step * 3 + 1          # 1, 4, 13, 40, ... odd growth
        assert sum(pieces) == size

        def sender(node):
            buf = node.buffer(size, fill=payload)
            stream = yield from node.fm.begin_message(1, size, hid)
            offset = 0
            for piece in pieces:
                yield from node.fm.send_piece(stream, buf, offset, piece)
                offset += piece
            yield from node.fm.end_message(stream)

        cluster.run([sender, receiver_until(1, log)])
        assert log == [payload]

    @pytest.mark.parametrize("chunk", [1, 3, 500, 1024, 1500])
    def test_split_receives_roundtrip(self, chunk):
        """Odd receive sizes exercise the memoryview chunk-split path."""
        size = 4099
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = register_all(cluster, chunked_handler(log, chunk))
        payload = pattern(size, salt=chunk)

        def sender(node):
            buf = node.buffer(size, fill=payload)
            yield from node.fm.send_buffer(1, hid, buf, size)

        cluster.run([sender, receiver_until(1, log)])
        assert log == [payload]

    def test_sender_mutation_after_send_does_not_leak(self):
        """The send APIs snapshot before yielding control back to the app.

        A program that reuses (overwrites) its send buffer between messages
        must not corrupt messages still in flight — the defining hazard of
        aliasing the user's buffer with memoryviews.
        """
        size = 3000
        n_messages = 8
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        log = []
        hid = register_all(cluster, collect_handler(log))
        payloads = [pattern(size, salt=i) for i in range(n_messages)]

        def sender(node):
            buf = node.buffer(size)
            for payload in payloads:
                buf.write(payload)            # overwrite the previous message
                yield from node.fm.send_buffer(1, hid, buf, size)
            buf.write(bytes(size))            # and scribble zeros at the end

        cluster.run([sender, receiver_until(n_messages, log)])
        assert log == payloads


class TestCorruptionPath:
    def test_crc_detects_corruption_over_zero_copy_path(self):
        machine = PPRO_FM2.with_link(bit_error_rate=1e-4)
        cluster = Cluster(2, machine=machine, fm_version=2)
        log = []
        hid = register_all(cluster, collect_handler(log))

        def sender(node):
            buf = node.buffer(1024, fill=pattern(1024))
            for _ in range(300):
                yield from node.fm.send_buffer(1, hid, buf, 1024)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        with pytest.raises(FmCorruptionError, match="no recovery"):
            cluster.run([sender, receiver], until_ns=10_000_000_000)
        # Everything delivered before the corruption was byte-exact.
        assert all(data == pattern(1024) for data in log)


class TestPacketPayloadContract:
    def test_memoryview_payload_is_snapshotted(self):
        """Packet freezes a view payload to bytes at construction."""
        buf = Buffer.from_bytes(pattern(64))
        header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=0,
                              msg_bytes=64, flags=PacketFlags.FIRST | PacketFlags.LAST)
        packet = Packet(header, buf.view(0, 64))
        buf.write(bytes(64))                  # mutate after construction
        assert type(packet.payload) is bytes
        assert packet.payload == pattern(64)
        assert packet.crc_ok()
        assert packet.crc == compute_crc(pattern(64))

    def test_view_rejects_out_of_range(self):
        buf = Buffer(16)
        with pytest.raises(IndexError):
            buf.view(8, 16)

    def test_view_is_read_only(self):
        buf = Buffer(16)
        view = buf.view(0, 8)
        with pytest.raises(TypeError):
            view[0] = 1

    def test_str_payload_rejected(self):
        header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=0,
                              msg_bytes=4)
        with pytest.raises(TypeError, match="bytes-like"):
            Packet(header, "text")

    def test_corrupt_flag_fails_crc(self):
        header = PacketHeader(src=0, dest=1, handler_id=0, msg_id=0, seq=0,
                              msg_bytes=4, flags=PacketFlags.CORRUPT)
        packet = Packet(header, memoryview(b"data"))
        assert not packet.crc_ok()
