"""FM 2.x semantics: streams, gather/scatter, handler multithreading,
receiver flow control (the Table 2 API)."""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmProtocolError
from repro.hardware.packet import HEADER_BYTES


def collect_handler(log):
    """Handler that reads the whole message in one receive."""
    def handler(fm, stream, src):
        data = yield from stream.receive_bytes(stream.msg_bytes)
        log.append((src, data))
    return handler


def receiver_until(count, log, budget=None):
    def program(node):
        while len(log) < count:
            got = yield from node.fm.extract(budget)
            if not got:
                yield node.env.timeout(500)
    return program


def register_all(cluster, handler):
    ids = {n.fm.register_handler(handler) for n in cluster.nodes}
    assert len(ids) == 1
    return ids.pop()


class TestGather:
    def test_single_piece(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        payload = b"one-piece message"
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send_buffer(1, hid, buf, len(payload))
        fm2_cluster.run([sender, receiver_until(1, log)])
        assert log == [(0, payload)]

    def test_many_odd_pieces(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        payload = bytes(i % 251 for i in range(3000))
        pieces = [1, 7, 100, 892, 1500, 500]
        assert sum(pieces) == 3000
        def sender(node):
            buf = node.buffer(3000, fill=payload)
            stream = yield from node.fm.begin_message(1, 3000, hid)
            offset = 0
            for piece in pieces:
                yield from node.fm.send_piece(stream, buf, offset, piece)
                offset += piece
            yield from node.fm.end_message(stream)
        fm2_cluster.run([sender, receiver_until(1, log)])
        assert log[0][1] == payload

    def test_piece_overflow_rejected(self, fm2_cluster):
        node = fm2_cluster.node(0)
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(n):
            buf = n.buffer(100)
            stream = yield from n.fm.begin_message(1, 50, hid)
            yield from n.fm.send_piece(stream, buf, 0, 51)
        with pytest.raises(FmProtocolError, match="overflow"):
            fm2_cluster.run([sender, None])

    def test_end_before_declared_size_rejected(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(n):
            buf = n.buffer(10)
            stream = yield from n.fm.begin_message(1, 20, hid)
            yield from n.fm.send_piece(stream, buf, 0, 10)
            yield from n.fm.end_message(stream)
        with pytest.raises(FmProtocolError, match="unsent"):
            fm2_cluster.run([sender, None])

    def test_use_after_end_rejected(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(n):
            buf = n.buffer(4)
            stream = yield from n.fm.begin_message(1, 4, hid)
            yield from n.fm.send_piece(stream, buf, 0, 4)
            yield from n.fm.end_message(stream)
            yield from n.fm.send_piece(stream, buf, 0, 4)
        with pytest.raises(FmProtocolError, match="after FM_end_message"):
            fm2_cluster.run([sender, None])

    def test_exact_packet_multiple_no_empty_trailer(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        size = fm2_cluster.fm_params.packet_payload * 2
        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)
        fm2_cluster.run([sender, receiver_until(1, log)])
        assert fm2_cluster.node(0).fm.stats_sent_packets == 2

    def test_zero_byte_message(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(node):
            yield from node.fm.send_buffer(1, hid, node.buffer(0), 0)
        fm2_cluster.run([sender, receiver_until(1, log)])
        assert log == [(0, b"")]

    def test_gather_performs_no_assembly_copy(self, fm2_cluster):
        """The send path must not copy user data in host memory."""
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        payload = bytes(2000)
        def sender(node):
            buf = node.buffer(2000, fill=payload)
            stream = yield from node.fm.begin_message(1, 2000, hid)
            yield from node.fm.send_piece(stream, buf, 0, 1000)
            yield from node.fm.send_piece(stream, buf, 1000, 1000)
            yield from node.fm.end_message(stream)
        fm2_cluster.run([sender, receiver_until(1, log)])
        assert fm2_cluster.node(0).cpu.meter.copies == 0


class TestScatter:
    def test_piecewise_receive(self, fm2_cluster):
        parts = []
        def handler(fm, stream, src):
            head = yield from stream.receive_bytes(4)
            mid = yield from stream.receive_bytes(100)
            tail = yield from stream.receive_bytes(stream.msg_bytes - 104)
            parts.append((head, mid, tail))
        hid = register_all(fm2_cluster, handler)
        payload = bytes(range(256)) * 2
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send_buffer(1, hid, buf, len(payload))
        fm2_cluster.run([sender, receiver_until(1, parts)])
        head, mid, tail = parts[0]
        assert head + mid + tail == payload

    def test_piece_sizes_need_not_match(self, fm2_cluster):
        """Sender composes in N pieces, receiver decomposes in M."""
        out = []
        def handler(fm, stream, src):
            chunks = []
            for size in (10, 1, 989, 2000):
                chunks.append((yield from stream.receive_bytes(size)))
            out.append(b"".join(chunks))
        hid = register_all(fm2_cluster, handler)
        payload = bytes(i % 249 for i in range(3000))
        def sender(node):
            buf = node.buffer(3000, fill=payload)
            stream = yield from node.fm.begin_message(1, 3000, hid)
            yield from node.fm.send_piece(stream, buf, 0, 1500)
            yield from node.fm.send_piece(stream, buf, 1500, 1500)
            yield from node.fm.end_message(stream)
        fm2_cluster.run([sender, receiver_until(1, out)])
        assert out[0] == payload

    def test_receive_beyond_message_rejected(self, fm2_cluster):
        failures = []
        def handler(fm, stream, src):
            try:
                yield from stream.receive_bytes(stream.msg_bytes + 1)
            except FmProtocolError as exc:
                failures.append(str(exc))
        hid = register_all(fm2_cluster, handler)
        def sender(node):
            buf = node.buffer(10)
            yield from node.fm.send_buffer(1, hid, buf, 10)
        fm2_cluster.run([sender, receiver_until(1, failures)])
        assert "exceeds" in failures[0]

    def test_under_consuming_handler_discards_rest(self, fm2_cluster):
        got = []
        def handler(fm, stream, src):
            got.append((yield from stream.receive_bytes(8)))
        hid = register_all(fm2_cluster, handler)
        def sender(node):
            buf = node.buffer(500, fill=bytes(range(250)) * 2)
            yield from node.fm.send_buffer(1, hid, buf, 500)
        fm2_cluster.run([sender, receiver_until(1, got)])
        assert got[0] == bytes(range(8))
        fm = fm2_cluster.node(1).fm
        assert fm.stats_recv_messages == 1
        assert fm.pending_handlers() == 0

    def test_delivery_copy_metered_once(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(node):
            buf = node.buffer(1500)
            yield from node.fm.send_buffer(1, hid, buf, 1500)
        fm2_cluster.run([sender, receiver_until(1, log)])
        meter = fm2_cluster.node(1).cpu.meter
        assert meter.bytes_for("fm2.deliver") == 1500


class TestHandlerMultithreading:
    def test_handler_starts_before_message_complete(self, fm2_cluster):
        """The paper's headline 2.x behaviour: handler execution begins on
        the first packet, not after full reassembly."""
        events = []
        def handler(fm, stream, src):
            events.append(("handler-start", stream.arrived_bytes,
                           stream.msg_bytes))
            yield from stream.receive_bytes(stream.msg_bytes)
            events.append(("handler-end", stream.arrived_bytes,
                           stream.msg_bytes))
        hid = register_all(fm2_cluster, handler)
        size = fm2_cluster.fm_params.packet_payload * 4
        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)
        fm2_cluster.run([sender, receiver_until(1, events) if False else
                         receiver_until(2, events)])
        start = events[0]
        assert start[0] == "handler-start"
        assert start[1] < start[2]           # strictly before completion

    def test_interleaved_messages_from_two_senders(self):
        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        log = []
        def handler(fm, stream, src):
            data = yield from stream.receive_bytes(stream.msg_bytes)
            log.append((src, data))
        ids = {n.fm.register_handler(handler) for n in cluster.nodes}
        hid = ids.pop()
        big = cluster.fm_params.packet_payload * 6
        def make_sender(rank):
            def sender(node):
                payload = bytes([rank]) * big
                buf = node.buffer(big, fill=payload)
                yield from node.fm.send_buffer(2, hid, buf, big)
            return sender
        def receiver(node):
            while len(log) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        cluster.run([make_sender(0), make_sender(1), receiver])
        by_src = {src: data for src, data in log}
        assert by_src[0] == bytes([0]) * big
        assert by_src[1] == bytes([1]) * big

    def test_long_message_does_not_block_short_one(self):
        """§4.1: 'one long message from one sender does not block other
        senders' — the short message completes while the long one is still
        in flight."""
        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        completions = []
        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            completions.append((src, fm.env.now))
        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        long_size = cluster.fm_params.packet_payload * 12
        def long_sender(node):
            buf = node.buffer(long_size)
            yield from node.fm.send_buffer(2, hid, buf, long_size)
        def short_sender(node):
            yield node.env.timeout(5_000)   # start after the long send
            buf = node.buffer(16)
            yield from node.fm.send_buffer(2, hid, buf, 16)
        def receiver(node):
            while len(completions) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        cluster.run([long_sender, short_sender, receiver])
        order = [src for src, _t in completions]
        assert order[0] == 1    # the short message finished first

    def test_multiple_handlers_pending(self, fm2_cluster):
        peak_pending = []
        def handler(fm, stream, src):
            peak_pending.append(fm.pending_handlers())
            yield from stream.receive_bytes(stream.msg_bytes)
        hid = register_all(fm2_cluster, handler)
        size = fm2_cluster.fm_params.packet_payload * 3
        def sender(node):
            buf = node.buffer(size)
            for _ in range(4):
                yield from node.fm.send_buffer(1, hid, buf, size)
        done = []
        def receiver(node):
            while node.fm.stats_recv_messages < 4:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
            done.append(True)
        fm2_cluster.run([sender, receiver])
        assert len(peak_pending) == 4


class TestReceiverFlowControl:
    def test_budget_rounds_to_packet_boundary(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        packet = fm2_cluster.fm_params.packet_payload
        size = packet * 4
        extracted_per_call = []
        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)
        def receiver(node):
            while not log:
                got = yield from node.fm.extract(max_bytes=1)
                if got:
                    extracted_per_call.append(got)
                else:
                    yield node.env.timeout(500)
        fm2_cluster.run([sender, receiver])
        # A budget of 1 byte still processes one whole packet, never more.
        assert all(chunk == packet for chunk in extracted_per_call)
        assert len(extracted_per_call) == 4

    def test_unextracted_data_stays_queued(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        packet = fm2_cluster.fm_params.packet_payload
        size = packet * 6
        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)
        remaining = []
        def receiver(node):
            # Wait for everything to arrive, extract only half the packets.
            yield node.env.timeout(200_000)
            yield from node.fm.extract(max_bytes=packet * 3)
            remaining.append(node.fm.nic.recv_region.level)
            while not log:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        fm2_cluster.run([sender, receiver])
        assert remaining[0] > 0
        assert log[0][1] == bytes(size)

    def test_zero_budget_extracts_nothing(self, fm2_cluster):
        log = []
        hid = register_all(fm2_cluster, collect_handler(log))
        def sender(node):
            buf = node.buffer(64)
            yield from node.fm.send_buffer(1, hid, buf, 64)
        counts = []
        def receiver(node):
            yield node.env.timeout(100_000)
            counts.append((yield from node.fm.extract(max_bytes=0)))
            while not log:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        fm2_cluster.run([sender, receiver])
        assert counts == [0]

    def test_negative_budget_rejected(self, fm2_cluster):
        node = fm2_cluster.node(1)
        with pytest.raises(FmProtocolError):
            next(node.fm.extract(max_bytes=-1))


class TestValidation:
    def test_self_send_rejected(self, fm2_cluster):
        node = fm2_cluster.node(0)
        hid = node.fm.register_handler(lambda fm, s, src: iter(()))
        with pytest.raises(FmProtocolError, match="self"):
            next(node.fm.begin_message(0, 10, hid))

    def test_negative_message_size_rejected(self, fm2_cluster):
        node = fm2_cluster.node(0)
        hid = node.fm.register_handler(lambda fm, s, src: iter(()))
        with pytest.raises(FmProtocolError):
            next(node.fm.begin_message(1, -5, hid))

    def test_unknown_handler_rejected(self, fm2_cluster):
        node = fm2_cluster.node(0)
        with pytest.raises(FmProtocolError, match="handler"):
            next(node.fm.begin_message(1, 10, 42))
