"""FM 1.x edge cases: fast path economics, extract valve, handler errors,
and host CPU sharing between co-resident programs."""

import pytest

from repro.cluster import Cluster
from repro.configs import SPARC_FM1
from repro.core.fm1.api import SEND4_BYTES


class TestSend4Economics:
    def test_fast_path_cheaper_than_general_send(self, fm1_cluster):
        """FM_send_4 exists because the short path skips the general
        per-message machinery; the CPU cost difference must be real."""
        log = []

        def handler(fm, src, staging, nbytes):
            log.append(nbytes)
            return
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in fm1_cluster.nodes}.pop()
        costs = {}

        def sender(node):
            buf = node.buffer(SEND4_BYTES)
            start = node.cpu.busy_ns
            yield from node.fm.send_4(1, hid, buf.read())
            costs["send_4"] = node.cpu.busy_ns - start
            start = node.cpu.busy_ns
            yield from node.fm.send(1, hid, buf, SEND4_BYTES)
            costs["send"] = node.cpu.busy_ns - start

        def receiver(node):
            while len(log) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm1_cluster.run([sender, receiver])
        assert costs["send_4"] < costs["send"]
        # The saving is exactly the per-message bookkeeping.
        saving = costs["send"] - costs["send_4"]
        assert saving == SPARC_FM1.cpu.per_message_ns


class TestExtractValve:
    def test_max_packets_limits_processing(self, fm1_cluster):
        log = []

        def handler(fm, src, staging, nbytes):
            log.append(nbytes)
            return
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in fm1_cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(64)
            for _ in range(6):
                yield from node.fm.send(1, hid, buf, 64)

        counts = []

        def receiver(node):
            yield node.env.timeout(300_000)     # let everything arrive
            handled = yield from node.fm.extract(max_packets=2)
            counts.append(handled)
            while len(log) < 6:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        fm1_cluster.run([sender, receiver])
        assert counts[0] == 2
        assert len(log) == 6


class TestHandlerErrors:
    def test_handler_exception_fails_extract(self, fm1_cluster):
        def handler(fm, src, staging, nbytes):
            raise KeyError("fm1 handler bug")
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in fm1_cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(8)
            yield from node.fm.send(1, hid, buf, 8)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        with pytest.raises(KeyError, match="fm1 handler bug"):
            fm1_cluster.run([sender, receiver], until_ns=100_000_000)


class TestHostCpuSharing:
    def test_two_programs_on_one_node_serialise_on_the_cpu(self):
        """Two logical threads on one host cannot overlap CPU time: their
        combined busy time equals the CPU's busy counter, and the second
        program's sends are delayed by the first's."""
        cluster = Cluster(3, machine=SPARC_FM1, fm_version=1)
        log = []

        def handler(fm, src, staging, nbytes):
            log.append(src)
            return
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        node0 = cluster.node(0)
        finished = {}

        def make_worker(name):
            def worker(node):
                buf = node.buffer(256)
                for _ in range(5):
                    yield from node.fm.send(1, hid, buf, 256)
                finished[name] = node.env.now
            return worker

        def receiver(node):
            while len(log) < 10:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        # Spawn both workers on node 0 plus the receiver on node 1.
        cluster.spawn(make_worker("a"), 0)
        cluster.spawn(make_worker("b"), 0)
        done = cluster.spawn(receiver, 1)
        cluster.env.run(until=done)

        solo = Cluster(3, machine=SPARC_FM1, fm_version=1)
        hid2 = {n.fm.register_handler(handler) for n in solo.nodes}.pop()
        solo_log = []

        def solo_handler_receiver(node):
            while node.fm.stats_recv_messages < 5:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        def solo_worker(node):
            buf = node.buffer(256)
            for _ in range(5):
                yield from node.fm.send(1, hid2, buf, 256)
            solo_log.append(node.env.now)

        solo.run([solo_worker, solo_handler_receiver])
        # Sharing one CPU roughly doubles the time to push the same load.
        shared_time = max(finished.values())
        assert shared_time > 1.6 * solo_log[0]
