"""Shared FM machinery: params, handler table, credits."""

import pytest

from repro.core.common import FmParams, FmProtocolError, HandlerTable
from repro.cluster import Cluster
from repro.configs import PPRO_FM2


class TestFmParams:
    def test_defaults_valid(self):
        params = FmParams(packet_payload=128)
        assert params.credits_per_peer >= 1

    def test_packet_payload_validated(self):
        with pytest.raises(ValueError):
            FmParams(packet_payload=0)

    def test_credit_batch_bounds(self):
        with pytest.raises(ValueError):
            FmParams(packet_payload=128, credits_per_peer=4, credit_batch=5)
        with pytest.raises(ValueError):
            FmParams(packet_payload=128, credit_batch=0)

    @pytest.mark.parametrize("nbytes,expected", [
        (0, 1), (1, 1), (128, 1), (129, 2), (256, 2), (1000, 8),
    ])
    def test_packets_for(self, nbytes, expected):
        assert FmParams(packet_payload=128).packets_for(nbytes) == expected


class TestHandlerTable:
    def test_register_returns_sequential_ids(self):
        table = HandlerTable()
        def h1(): pass
        def h2(): pass
        assert table.register(h1) == 0
        assert table.register(h2) == 1
        assert table.lookup(0) is h1
        assert len(table) == 2

    def test_lookup_unknown_id(self):
        with pytest.raises(FmProtocolError):
            HandlerTable().lookup(0)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            HandlerTable().register(42)


class TestCreditLedger:
    def test_initial_credits(self, fm2_cluster):
        fm = fm2_cluster.node(0).fm
        assert fm.credits_available(1) == fm.params.credits_per_peer
        assert fm.outstanding_credits(1) == 0

    def test_msg_ids_monotonic_per_peer(self, fm2_cluster):
        fm = fm2_cluster.node(0).fm
        assert [fm.alloc_msg_id(1) for _ in range(3)] == [0, 1, 2]
        assert fm.alloc_msg_id(0) == 0   # independent per destination

    def test_credits_spent_per_packet(self, fm2_cluster):
        cluster = fm2_cluster
        fm0 = cluster.node(0).fm
        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
        hid = [n.fm.register_handler(handler) for n in cluster.nodes][0]
        payload_packets = 3
        size = cluster.fm_params.packet_payload * payload_packets

        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)

        cluster.run([sender, None])
        assert fm0.outstanding_credits(1) == payload_packets

    def test_credits_return_after_extract(self, fm2_cluster):
        cluster = fm2_cluster
        fm0 = cluster.node(0).fm
        done = []
        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            done.append(1)
        hid = [n.fm.register_handler(handler) for n in cluster.nodes][0]
        size = cluster.fm_params.packet_payload * cluster.fm_params.credit_batch

        def sender(node):
            buf = node.buffer(size)
            yield from node.fm.send_buffer(1, hid, buf, size)

        def receiver(node):
            while not done:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
            # Give the credit-return packet time to fly back.
            yield node.env.timeout(50_000)

        cluster.run([sender, receiver])
        assert fm0.outstanding_credits(1) == 0
        assert cluster.node(1).fm.stats_credit_packets >= 1

    def test_credit_overflow_detected(self, fm2_cluster):
        fm = fm2_cluster.node(0).fm
        # Forge an over-return in the NIC mailbox.
        fm.nic.credit_mailbox[1] = fm.params.credits_per_peer + 1
        with pytest.raises(FmProtocolError, match="credit overflow"):
            fm.credits_available(1)
