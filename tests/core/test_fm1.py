"""FM 1.x semantics: the Table 1 API."""

import pytest

from repro.cluster import Cluster
from repro.configs import SPARC_FM1
from repro.core.common import FmCorruptionError, FmProtocolError, FmStalledError
from repro.core.fm1.api import SEND4_BYTES


def sink_handler(log):
    def handler(fm, src, staging, nbytes):
        log.append((src, staging.read(0, nbytes)))
        return
        yield  # pragma: no cover - generator marker
    return handler


def receiver_until(count, log):
    def program(node):
        while len(log) < count:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)
    return program


class TestSend:
    def test_single_packet_message(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        payload = b"short message"
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send(1, hid, buf, len(payload))
        fm1_cluster.run([sender, receiver_until(1, log)])
        assert log == [(0, payload)]

    def test_multi_packet_reassembly(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        payload = bytes(i % 251 for i in range(1000))   # 8 packets of 128
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send(1, hid, buf, len(payload))
        fm1_cluster.run([sender, receiver_until(1, log)])
        assert log[0][1] == payload

    def test_message_with_offset(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        def sender(node):
            buf = node.buffer(20, fill=b"XXXXXhello worldYYYY")
            yield from node.fm.send(1, hid, buf, 11, offset=5)
        fm1_cluster.run([sender, receiver_until(1, log)])
        assert log[0][1] == b"hello world"

    def test_zero_byte_message_invokes_handler(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        def sender(node):
            yield from node.fm.send(1, hid, node.buffer(0), 0)
        fm1_cluster.run([sender, receiver_until(1, log)])
        assert log == [(0, b"")]

    def test_send_4_exact_size(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        words = b"0123456789abcdef"
        def sender(node):
            yield from node.fm.send_4(1, hid, words)
        fm1_cluster.run([sender, receiver_until(1, log)])
        assert log == [(0, words)]

    def test_send_4_wrong_size_rejected(self, fm1_cluster):
        node = fm1_cluster.node(0)
        hid = node.fm.register_handler(sink_handler([]))
        with pytest.raises(FmProtocolError, match=str(SEND4_BYTES)):
            next(node.fm.send_4(1, hid, b"short"))

    def test_self_send_rejected(self, fm1_cluster):
        node = fm1_cluster.node(0)
        hid = node.fm.register_handler(sink_handler([]))
        with pytest.raises(FmProtocolError, match="self"):
            next(node.fm.send(0, hid, node.buffer(4), 4))

    def test_unknown_handler_rejected(self, fm1_cluster):
        node = fm1_cluster.node(0)
        with pytest.raises(FmProtocolError, match="handler"):
            next(node.fm.send(1, 99, node.buffer(4), 4))

    def test_negative_size_rejected(self, fm1_cluster):
        node = fm1_cluster.node(0)
        hid = node.fm.register_handler(sink_handler([]))
        with pytest.raises(FmProtocolError):
            next(node.fm.send(1, hid, node.buffer(4), -1))


class TestOrdering:
    def test_per_sender_fifo(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        messages = [bytes([i]) * (10 + i * 30) for i in range(8)]
        def sender(node):
            for m in messages:
                buf = node.buffer(len(m), fill=m)
                yield from node.fm.send(1, hid, buf, len(m))
        fm1_cluster.run([sender, receiver_until(8, log)])
        assert [entry[1] for entry in log] == messages

    def test_two_senders_interleave_but_each_fifo(self):
        cluster = Cluster(3, machine=SPARC_FM1, fm_version=1)
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in cluster.nodes][0]
        def make_sender(rank):
            def sender(node):
                for i in range(5):
                    m = bytes([rank]) + bytes([i]) * 200
                    buf = node.buffer(len(m), fill=m)
                    yield from node.fm.send(2, hid, buf, len(m))
            return sender
        cluster.run([make_sender(0), make_sender(1), receiver_until(10, log)])
        for rank in (0, 1):
            seq = [m[1] for (_s, m) in log if m[0] == rank]
            assert seq == sorted(seq)
            assert len(seq) == 5


class TestHandlers:
    def test_handler_runs_only_after_full_message(self, fm1_cluster):
        """FM 1.x delays the handler until the whole message has arrived."""
        sizes = []
        def handler(fm, src, staging, nbytes):
            # Every byte must already be present in the staging buffer.
            sizes.append((nbytes, len(staging.read(0, nbytes))))
            return
            yield  # pragma: no cover
        hid = [n.fm.register_handler(handler) for n in fm1_cluster.nodes][0]
        payload = bytes(700)
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send(1, hid, buf, len(payload))
        def receiver(node):
            while not sizes:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        fm1_cluster.run([sender, receiver])
        assert sizes == [(700, 700)]

    def test_handler_can_send_reply(self, fm1_cluster):
        replies = []
        def pong_handler(fm, src, staging, nbytes):
            replies.append(staging.read(0, nbytes))
            return
            yield  # pragma: no cover
        def ping_handler(fm, src, staging, nbytes):
            buf_out = type(staging)(4, fill=b"pong")
            yield from fm.send(src, pong_id, buf_out, 4)
        ids = [(n.fm.register_handler(ping_handler),
                n.fm.register_handler(pong_handler)) for n in fm1_cluster.nodes]
        ping_id, pong_id = ids[0]
        def initiator(node):
            buf = node.buffer(4, fill=b"ping")
            yield from node.fm.send(1, ping_id, buf, 4)
            while not replies:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        def responder(node):
            while node.fm.stats_recv_messages == 0:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        fm1_cluster.run([initiator, responder])
        assert replies == [b"pong"]

    def test_staging_copy_metered(self, fm1_cluster):
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in fm1_cluster.nodes][0]
        payload = bytes(512)
        def sender(node):
            buf = node.buffer(len(payload), fill=payload)
            yield from node.fm.send(1, hid, buf, len(payload))
        fm1_cluster.run([sender, receiver_until(1, log)])
        meter = fm1_cluster.node(1).cpu.meter
        assert meter.bytes_for("fm1.staging_copy") == 512


class TestFaults:
    def test_corruption_raises(self):
        machine = SPARC_FM1.with_link(bit_error_rate=0.01)
        cluster = Cluster(2, machine=machine, fm_version=1)
        log = []
        hid = [n.fm.register_handler(sink_handler(log)) for n in cluster.nodes][0]
        def sender(node):
            buf = node.buffer(128)
            for _ in range(200):
                yield from node.fm.send(1, hid, buf, 128)
        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
        with pytest.raises(FmCorruptionError):
            cluster.run([sender, receiver], until_ns=10_000_000_000)

    def test_credit_stall_detected(self):
        """A receiver that never extracts eventually stalls the sender."""
        from repro.core.common import FmParams
        params = FmParams(packet_payload=128, credits_per_peer=2,
                          credit_batch=1, stall_limit_ns=1_000_000)
        cluster = Cluster(2, machine=SPARC_FM1, fm_version=1, fm_params=params)
        hid = [n.fm.register_handler(sink_handler([])) for n in cluster.nodes][0]
        def sender(node):
            buf = node.buffer(128)
            for _ in range(10):
                yield from node.fm.send(1, hid, buf, 128)
        with pytest.raises(FmStalledError):
            cluster.run([sender, None])
