"""Fairness and sharing: multiple senders into one receiver.

The paper's §4.1 claims the FM 2.x design keeps one sender's long message
from starving others; these tests quantify sharing beyond the single
interleaving check: with symmetric load, both senders finish within a
small factor of each other, and the receiver's extract serves them in
arrival order (no sender-priority bias).
"""

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1


def run_two_senders(fm_version, msg_bytes, n_messages):
    machine = SPARC_FM1 if fm_version == 1 else PPRO_FM2
    cluster = Cluster(3, machine=machine, fm_version=fm_version)
    finish = {}
    count = {0: 0, 1: 0}

    if fm_version == 1:
        def handler(fm, src, staging, nbytes):
            count[src] += 1
            if count[src] == n_messages:
                finish[src] = fm.env.now
            return
            yield  # pragma: no cover
    else:
        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            count[src] += 1
            if count[src] == n_messages:
                finish[src] = stream.fm.env.now

    hid = {node.fm.register_handler(handler) for node in cluster.nodes}.pop()

    def make_sender(rank):
        def sender(node):
            buf = node.buffer(msg_bytes)
            for _ in range(n_messages):
                if fm_version == 1:
                    yield from node.fm.send(2, hid, buf, msg_bytes)
                else:
                    yield from node.fm.send_buffer(2, hid, buf, msg_bytes)
        return sender

    def receiver(node):
        while len(finish) < 2:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(500)

    cluster.run([make_sender(0), make_sender(1), receiver])
    return finish, count


class TestSymmetricFairness:
    @pytest.mark.parametrize("fm_version", [1, 2])
    def test_equal_senders_finish_together(self, fm_version):
        finish, count = run_two_senders(fm_version, msg_bytes=512,
                                        n_messages=12)
        assert count == {0: 12, 1: 12}
        times = sorted(finish.values())
        # Symmetric load through one receiver: completions within 25%.
        assert times[1] / times[0] < 1.25

    def test_fm2_many_message_sizes_still_fair(self):
        finish, count = run_two_senders(2, msg_bytes=2048, n_messages=8)
        times = sorted(finish.values())
        assert times[1] / times[0] < 1.25


class TestAsymmetricSharing:
    def test_small_sender_not_starved_by_bulk_sender(self):
        """One sender streams bulk data; the other sends small messages.
        The small sender's completion must not degrade to the bulk
        sender's timescale (FM 2.x interleaving + per-peer credits)."""
        cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
        finish = {}
        count = {0: 0, 1: 0}
        bulk_total, small_total = 10, 10

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)
            count[src] += 1
            target = bulk_total if src == 0 else small_total
            if count[src] == target:
                finish[src] = stream.fm.env.now

        hid = {node.fm.register_handler(handler)
               for node in cluster.nodes}.pop()

        def bulk_sender(node):
            buf = node.buffer(8192)
            for _ in range(bulk_total):
                yield from node.fm.send_buffer(2, hid, buf, 8192)

        def small_sender(node):
            buf = node.buffer(64)
            for _ in range(small_total):
                yield from node.fm.send_buffer(2, hid, buf, 64)

        def receiver(node):
            while len(finish) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        cluster.run([bulk_sender, small_sender, receiver])
        # The small sender's ten 64-byte messages finish much sooner than
        # the bulk sender's 80 KB.
        assert finish[1] < finish[0] * 0.6
