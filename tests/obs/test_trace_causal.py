"""End-to-end causal tracing: context propagation, flows, zero cost."""

from __future__ import annotations

import json

from repro.obs.export import (
    dumps_deterministic,
    flow_pid_pairs,
    trace_events,
    validate_trace_events,
)
from repro.workloads.runner import PRESETS, Scenario, execute_scenario


def small_rpc(fm_version: int = 2, **overrides) -> Scenario:
    spec = dict(
        name=f"trace-fm{fm_version}", kind="rpc", fm_version=fm_version,
        machine="ppro" if fm_version == 2 else "sparc",
        n_nodes=3, arrival="closed", think_ns=5_000, n_requests=6)
    spec.update(overrides)
    return Scenario(**spec)


class TestTracePropagation:
    def test_every_request_minted_one_trace(self):
        outcome = execute_scenario(small_rpc(), observe=True)
        obs = outcome.observer
        roots = [s for s in obs.spans
                 if s.trace_id is not None and s.parent_id is None]
        assert len(roots) == 12                 # 2 clients x 6 requests
        assert len({r.trace_id for r in roots}) == 12
        assert all(r.name == "rpc.request" for r in roots)
        assert sorted(obs.trace_ids()) == sorted(r.trace_id for r in roots)

    def test_two_level_tree_shape(self):
        """Each trace: one client root, one server hop, transport leaves
        parented to whichever side was executing when they happened."""
        outcome = execute_scenario(small_rpc(), observe=True)
        obs = outcome.observer
        for trace_id in obs.trace_ids():
            spans = obs.spans_for_trace(trace_id)
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1
            serves = [s for s in spans if s.name == "rpc.serve"]
            assert len(serves) == 1
            assert serves[0].parent_id == roots[0].span_id
            ids = {s.span_id for s in spans}
            for span in spans:
                if span.parent_id is not None:
                    assert span.parent_id in ids   # no dangling parents
            # Transport spans exist on both sides of the hop.
            layers = {s.layer for s in spans}
            assert "fm" in layers and "nic" in layers

    def test_server_side_spans_carry_client_trace(self):
        """The NIC/FM spans on the server node join the client's trace —
        the context actually crossed the wire inside the packet."""
        outcome = execute_scenario(small_rpc(), observe=True)
        obs = outcome.observer
        for trace_id in obs.trace_ids():
            spans = obs.spans_for_trace(trace_id)
            nodes = {s.track.split("/", 1)[0] for s in spans}
            assert len(nodes) >= 2, f"trace {trace_id} stayed on {nodes}"

    def test_fm1_transport_propagates_too(self):
        outcome = execute_scenario(small_rpc(fm_version=1, n_nodes=2,
                                             n_requests=4), observe=True)
        trace = trace_events(outcome.observer.spans)
        validate_trace_events(trace)
        pairs = flow_pid_pairs(trace)
        assert pairs and all(a != b for a, b in pairs)


class TestFlowExport:
    def test_sharded_trace_flows_across_nodes(self):
        """Acceptance criterion: the sharded preset exports a valid trace
        with flow arrows spanning at least two nodes."""
        outcome = execute_scenario(PRESETS["rpc-sharded"], observe=True)
        trace = trace_events(outcome.observer.spans)
        validate_trace_events(trace)
        pairs = flow_pid_pairs(trace)
        assert len(pairs) >= 2
        assert all(src != dst for src, dst in pairs)
        # Request and response directions both appear: client->server pairs
        # and server->client pairs.
        assert {tuple(sorted(p)) for p in pairs} != pairs

    def test_x_events_carry_trace_args(self):
        outcome = execute_scenario(small_rpc(), observe=True)
        trace = trace_events(outcome.observer.spans)
        traced = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and "trace_id" in e["args"]]
        assert traced
        for event in traced:
            assert event["args"]["span_id"] >= 1
        untraced = [e for e in trace["traceEvents"]
                    if e["ph"] == "X" and "trace_id" not in e["args"]]
        # Non-request activity (e.g. credit control) stays traceless.
        for event in untraced:
            assert "span_id" not in event["args"]

    def test_flow_ids_pair_up(self):
        outcome = execute_scenario(small_rpc(), observe=True)
        events = trace_events(outcome.observer.spans)["traceEvents"]
        starts = sorted(e["id"] for e in events if e["ph"] == "s")
        ends = sorted(e["id"] for e in events if e["ph"] == "f")
        assert starts == ends and len(set(starts)) == len(starts)

    def test_export_round_trips_through_json(self):
        outcome = execute_scenario(small_rpc(), observe=True)
        text = dumps_deterministic(trace_events(outcome.observer.spans))
        validate_trace_events(json.loads(text))


class TestTraceDeterminismAndCost:
    def test_traced_export_byte_identical(self):
        def run_bytes() -> str:
            outcome = execute_scenario(PRESETS["rpc-sharded"], observe=True)
            return dumps_deterministic(trace_events(outcome.observer.spans))
        assert run_bytes() == run_bytes()

    def test_tracing_is_zero_simulated_cost(self):
        """Observed and unobserved runs produce byte-identical reports:
        minting/binding trace contexts never touches the event heap."""
        scenario = PRESETS["rpc-sharded"]
        off = dumps_deterministic(
            execute_scenario(scenario, observe=False).report)
        on = dumps_deterministic(
            execute_scenario(scenario, observe=True).report)
        assert off == on

    def test_trace_context_rides_packets_not_globals(self):
        """Concurrent clients interleave, yet every span lands in exactly
        the trace of the request that caused it (no cross-talk)."""
        outcome = execute_scenario(
            small_rpc(arrival="open", rate_rps=150_000.0, n_requests=8),
            observe=True)
        obs = outcome.observer
        for trace_id in obs.trace_ids():
            spans = obs.spans_for_trace(trace_id)
            root = next(s for s in spans if s.parent_id is None)
            req_id = root.attrs["req_id"]
            serve = next(s for s in spans if s.name == "rpc.serve")
            assert serve.attrs["req_id"] == req_id
