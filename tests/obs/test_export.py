"""Perfetto/Chrome trace-event export: schema, determinism, track layout."""

import json

import pytest

from repro.bench.journey import packet_journey_detail
from repro.configs import PPRO_FM2
from repro.obs.export import (
    distinct_tracks,
    dumps_deterministic,
    export_trace,
    split_track,
    trace_events,
    validate_trace_events,
)
from repro.obs.observer import Observer
from repro.obs.span import Span


def sample_spans():
    return [
        Span("fm", "inject", 100, 200, "node0/fm", {"bytes": 16}),
        Span("nic", "tx_firmware", 200, 350, "node0/nic.tx", {}),
        Span("fabric", "wire", 350, 420, "fabric/l0", {}),
        Span("nic", "rx_dma", 420, 600, "node1/nic.rx", {}),
        Span("fm", "FM_extract", 600, 700, "node1/fm", {}),
    ]


class TestSplitTrack:
    def test_process_thread(self):
        assert split_track("node0/nic.tx") == ("node0", "nic.tx")

    def test_bare_name(self):
        assert split_track("fabric") == ("fabric", "main")

    def test_empty(self):
        assert split_track("") == ("unknown", "main")


class TestTraceEvents:
    def test_schema_valid(self):
        trace = trace_events(sample_spans())
        validate_trace_events(trace)

    def test_metadata_names_tracks(self):
        trace = trace_events(sample_spans())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"node0", "node1", "fabric"}

    def test_x_events_microseconds(self):
        trace = trace_events([Span("fm", "inject", 1500, 3500, "node0/fm")])
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["ts"] == 1.5
        assert event["dur"] == 2.0
        assert event["cat"] == "fm"

    def test_pids_deterministic_from_sorted_names(self):
        trace = trace_events(sample_spans())
        meta = {e["args"]["name"]: e["pid"]
                for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        # fabric < node0 < node1 lexicographically -> pids 1, 2, 3.
        assert meta == {"fabric": 1, "node0": 2, "node1": 3}

    def test_distinct_tracks_counts_x_rows(self):
        assert distinct_tracks(trace_events(sample_spans())) == 5

    def test_validate_rejects_bad_events(self):
        with pytest.raises(ValueError):
            validate_trace_events({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_trace_events({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_trace_events([])


class TestDeterministicDumps:
    def test_sorted_keys_no_spaces(self):
        text = dumps_deterministic({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}\n'

    def test_same_spans_same_bytes(self):
        first = dumps_deterministic(trace_events(sample_spans()))
        second = dumps_deterministic(trace_events(sample_spans()))
        assert first == second


class TestExportedRun:
    def observed_trace_bytes(self):
        observer = Observer()
        packet_journey_detail(PPRO_FM2, 2, 16, observer=observer)
        return dumps_deterministic(trace_events(observer.spans))

    def test_fm2_pingpong_trace_valid_with_5_tracks(self, tmp_path):
        """The acceptance criterion: a 2-node FM2 exchange exports valid
        trace-event JSON with at least 5 distinct component tracks."""
        observer = Observer()
        packet_journey_detail(PPRO_FM2, 2, 16, observer=observer)
        path = export_trace(observer, tmp_path / "journey.json")
        trace = json.loads(path.read_text())
        validate_trace_events(trace)
        assert distinct_tracks(trace) >= 5

    def test_export_byte_identical_across_runs(self):
        assert self.observed_trace_bytes() == self.observed_trace_bytes()

    def test_export_creates_directories(self, tmp_path):
        observer = Observer()
        packet_journey_detail(PPRO_FM2, 2, 16, observer=observer)
        path = export_trace(observer, tmp_path / "deep" / "nested" / "t.json")
        assert path.exists()
