"""The breakdown report: scenarios, stage accounting, and the CLI."""

import pytest

from repro.obs.report import (
    SCENARIOS,
    critical_path,
    main,
    render_waterfall,
    request_roots,
    run_scenario,
)


class TestJourneyScenario:
    def test_stage_sum_equals_end_to_end(self):
        """Acceptance criterion: for the FM2 one-packet case the journey's
        stage durations sum exactly to the end-to-end latency."""
        report = run_scenario("journey-fm2")
        journey = report.journey
        assert journey is not None
        assert sum(d for _s, d in journey.stages()) == journey.total_ns

    def test_aggregate_stages_cover_the_packet(self):
        report = run_scenario("journey-fm2")
        stages = report.stage_rows()
        assert stages, "per-stage histograms missing"
        for _stage, count, p50, p99, total in stages:
            assert count == 1
            assert p50 == p99 == total
        (latency,) = report.obs.metrics.histograms("packet.latency_ns")
        # submit -> extract equals the sum of the waypoint stages.
        assert latency.total == sum(total for *_x, total in stages)

    def test_fm1_journey_runs(self):
        report = run_scenario("journey-fm1")
        assert report.cluster.fm_version == 1
        assert report.journey is not None


class TestStreamScenarios:
    def test_stream_fm2_aggregates_all_packets(self):
        report = run_scenario("stream-fm2", msg_bytes=1024, n_messages=10)
        (latency,) = report.obs.metrics.histograms("packet.latency_ns")
        assert latency.count == 10   # 1024B fits one FM2 packet per message
        assert report.obs.metrics.meters("link.bytes")
        text = report.render()
        assert "per-stage packet breakdown" in text
        assert "delivered link rates" in text

    def test_pingpong_scenario_both_directions(self):
        report = run_scenario("pingpong-fm2", n_messages=5)
        tracks = report.obs.tracks()
        assert "node0/nic.tx" in tracks and "node1/nic.tx" in tracks

    def test_mpi_scenario_has_mpi_spans(self):
        report = run_scenario("mpi-stream-fm2", msg_bytes=256, n_messages=5)
        layers = {layer for layer, *_r in report.span_summary()}
        assert "mpi" in layers and "fm" in layers and "nic" in layers

    def test_copy_bytes_federated_per_node(self):
        report = run_scenario("stream-fm2", msg_bytes=1024, n_messages=5)
        copies = report.obs.metrics.copy_bytes_by_label()
        assert "node1.cpu" in copies
        assert copies["node1.cpu"].get("fm2.deliver", 0) == 5 * 1024

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("no-such-scenario")


class TestRequestWaterfalls:
    def test_rpc_scenario_has_traced_roots(self):
        report = run_scenario("rpc-fm2", n_messages=4)
        roots = request_roots(report.obs)
        # 3 clients x 4 requests, every one traced from the client side.
        assert len(roots) == 12
        assert all(r.name == "rpc.request" for r in roots)
        assert all(r.parent_id is None and r.trace_id is not None
                   for r in roots)

    def test_critical_path_descends_to_a_leaf(self):
        report = run_scenario("rpc-fm2", n_messages=2)
        root = request_roots(report.obs)[0]
        path = critical_path(report.obs, root)
        assert path[0] is root
        # Each step is a child of the previous and the serve hop is on it.
        for parent, child in zip(path, path[1:]):
            assert child.parent_id == parent.span_id
        assert any(s.name == "rpc.serve" for s in path)

    def test_waterfall_renders_tree(self):
        report = run_scenario("rpc-fm2", n_messages=2)
        root = request_roots(report.obs)[0]
        text = render_waterfall(report.obs, root)
        assert "rpc.request" in text and "rpc.serve" in text
        assert "=" in text    # critical path highlighted
        # Every span row of the trace appears.
        assert len(text.splitlines()) == \
            2 + len(report.obs.spans_for_trace(root.trace_id))

    def test_non_rpc_scenarios_have_no_roots(self):
        report = run_scenario("stream-fm2", n_messages=3)
        assert request_roots(report.obs) == []


class TestCli:
    def test_all_scenarios_registered(self):
        assert set(SCENARIOS) == {
            "journey-fm1", "journey-fm2", "stream-fm1", "stream-fm2",
            "pingpong-fm2", "mpi-stream-fm2", "rpc-fm2", "rpc-sharded",
        }

    def test_journey_cli_exits_zero(self, capsys):
        assert main(["journey-fm2"]) == 0
        out = capsys.readouterr().out
        assert "one-packet journey" in out
        assert "credit stalls" in out

    def test_cli_trace_export(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        assert main(["journey-fm2", "--trace", str(trace_path)]) == 0
        assert trace_path.exists()
        import json

        from repro.obs.export import distinct_tracks, validate_trace_events
        trace = json.loads(trace_path.read_text())
        validate_trace_events(trace)
        assert distinct_tracks(trace) >= 5

    def test_cli_overrides(self, capsys):
        assert main(["stream-fm2", "--msg-bytes", "512",
                     "--messages", "4"]) == 0
        assert "stream-fm2" in capsys.readouterr().out
