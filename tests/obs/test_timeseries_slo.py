"""Windowed time series, SLO burn-rate detection, and their scenario wiring."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, NicStall
from repro.obs.export import dumps_deterministic
from repro.obs.metrics import Histogram
from repro.obs.slo import BurnRateDetector, SloSpec, evaluate_slos, window_counts
from repro.obs.timeseries import TimeSeriesBank
from repro.simkernel import Environment
from repro.workloads.runner import PRESETS, run_scenario
from repro.workloads.stats import Reservoir

STALL = NicStall(node=1, start_ns=200_000, end_ns=800_000, extra_ns=400_000)


def drive(schedule) -> TimeSeriesBank:
    """Run ``(t_ns, callable)`` pairs against a fresh bank at interval 100."""
    env = Environment()
    bank = TimeSeriesBank(env, 100)

    def proc(env):
        now = 0
        for at, record in schedule:
            if at > now:
                yield env.timeout(at - now)
                now = at
            record(bank)

    env.process(proc(env))
    env.run()
    return bank


class TestTimeSeriesBank:
    def test_rate_buckets_by_window(self):
        bank = drive([
            (0, lambda b: b.rate("sent").observe()),
            (50, lambda b: b.rate("sent").observe(2)),
            (250, lambda b: b.rate("sent").observe()),
        ])
        series = bank.rate("sent")
        assert series.windows() == [0, 2]
        assert series.window_sum(0) == 3
        assert series.window_sum(1) == 0     # untouched window reads zero
        assert series.window_sum(2) == 1
        assert series.total == 4
        assert series.points() == [[0, 3], [200, 1]]

    def test_gauge_tracks_last_and_max(self):
        bank = drive([
            (10, lambda b: b.gauge("depth").observe(3)),
            (20, lambda b: b.gauge("depth").observe(7)),
            (30, lambda b: b.gauge("depth").observe(2)),
        ])
        assert bank.gauge("depth").points() == [[0, 2, 7]]

    def test_quantile_windows_keep_raw_samples(self):
        bank = drive([
            (0, lambda b: b.quantile("lat").observe(10)),
            (10, lambda b: b.quantile("lat").observe(30)),
            (20, lambda b: b.quantile("lat").observe(20)),
            (110, lambda b: b.quantile("lat").observe(5)),
        ])
        series = bank.quantile("lat")
        assert series.window_values(0) == [10, 30, 20]
        # [t, count, p50, p99, max]
        assert series.points() == [[0, 3, 20, 30, 30], [100, 1, 5, 5, 5]]

    def test_labels_separate_series(self):
        bank = drive([
            (0, lambda b: b.rate("sent").observe()),
            (0, lambda b: b.rate("sent", shard="1").observe(5)),
        ])
        assert bank.rate("sent").total == 1
        assert bank.rate("sent", shard="1").total == 5
        doc = bank.as_dict()
        assert set(doc["series"]) == {"sent", "sent{shard=1}"}
        assert doc["interval_ns"] == 100

    def test_window_range_spans_all_series(self):
        bank = drive([
            (150, lambda b: b.rate("a").observe()),
            (520, lambda b: b.gauge("b").observe(1)),
        ])
        assert bank.window_range() == (1, 5)
        assert TimeSeriesBank(Environment(), 100).window_range() is None

    def test_as_dict_deterministic(self):
        def doc():
            return dumps_deterministic(drive([
                (0, lambda b: b.rate("x").observe()),
                (120, lambda b: b.quantile("y", shard="0").observe(9)),
            ]).as_dict())
        assert doc() == doc()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_ns"):
            TimeSeriesBank(Environment(), 0)


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec("x", "throughput", 0.9)
        with pytest.raises(ValueError, match="target"):
            SloSpec("x", "availability", 1.0)
        with pytest.raises(ValueError, match="threshold_ns"):
            SloSpec("x", "latency", 0.99)
        assert SloSpec("x", "availability", 0.99).budget == pytest.approx(0.01)


class TestBurnRateDetector:
    def spec(self):
        return SloSpec("avail", "availability", 0.9)   # budget = 0.1

    def test_within_budget_no_events(self):
        detector = BurnRateDetector(self.spec())
        assert detector.feed(0, good=19, bad=1) == []   # burn 0.5
        assert not detector.in_breach
        assert detector.max_burn_rate == pytest.approx(0.5)

    def test_breach_start_and_end_edges(self):
        detector = BurnRateDetector(self.spec())
        events = detector.feed(0, good=5, bad=5)        # burn 5.0
        assert [e.kind for e in events] == ["breach_start"]
        assert events[0].t_ns == 0
        assert detector.feed(100, good=4, bad=6) == []  # still breached: no edge
        events = detector.feed(200, good=20, bad=0)
        assert [e.kind for e in events] == ["breach_end"]
        assert detector.breached_windows == 2
        assert not detector.in_breach

    def test_empty_window_carries_state(self):
        detector = BurnRateDetector(self.spec())
        detector.feed(0, good=0, bad=10)
        assert detector.feed(100, good=0, bad=0) == []  # no evidence either way
        assert detector.in_breach
        result = detector.result()
        assert result["in_breach_at_end"] is True
        assert result["windows"] == 2

    def test_budget_consumed(self):
        detector = BurnRateDetector(self.spec())
        detector.feed(0, good=90, bad=10)               # exactly the budget
        assert detector.budget_consumed() == pytest.approx(1.0)

    def test_result_round_trips_to_json(self):
        detector = BurnRateDetector(self.spec())
        detector.feed(0, good=1, bad=9)
        text = dumps_deterministic(detector.result())
        assert '"breach_start"' in text


class TestWindowCounts:
    def test_availability_reads_completed_and_drops(self):
        bank = drive([
            (0, lambda b: b.rate("completed").observe(4)),
            (50, lambda b: b.rate("drops").observe(1)),
            (250, lambda b: b.rate("completed").observe(2)),
        ])
        rows = window_counts(bank, SloSpec("a", "availability", 0.9))
        # Dense walk: the quiet middle window appears with zero counts.
        assert rows == [(0, 4, 1), (100, 0, 0), (200, 2, 0)]

    def test_latency_thresholds_samples(self):
        bank = drive([
            (0, lambda b: b.quantile("latency_ns").observe(80)),
            (10, lambda b: b.quantile("latency_ns").observe(120)),
            (120, lambda b: b.quantile("latency_ns").observe(90)),
        ])
        rows = window_counts(
            bank, SloSpec("l", "latency", 0.99, threshold_ns=100))
        assert rows == [(0, 1, 1), (100, 1, 0)]

    def test_evaluate_slos_report_shape(self):
        bank = drive([(0, lambda b: b.rate("completed").observe(10))])
        doc = evaluate_slos(bank, (SloSpec("a", "availability", 0.99),))
        assert doc["interval_ns"] == 100
        assert doc["slos"]["a"]["good"] == 10
        assert doc["slos"]["a"]["events"] == []


class TestPercentileAgreement:
    """Histogram, Reservoir, and QuantileSeries share one quantile rule."""

    @pytest.mark.parametrize("n", [1, 2, 7, 100, 199])
    def test_three_implementations_agree(self, n):
        values = [(i * 7919) % 1000 for i in range(n)]
        hist = Histogram("h")
        reservoir = Reservoir("r")
        for v in values:
            hist.record(v)
            reservoir.record(v)
        bank = drive([(0, lambda b, v=v: b.quantile("q").observe(v))
                      for v in values])
        series = bank.quantile("q")
        (point,) = series.points()
        _t, count, p50, p99, peak = point
        assert count == n
        for p in (50, 95, 99):
            assert hist.percentile(p) == reservoir.percentile(p)
        assert p50 == hist.percentile(50) == reservoir.percentile(50)
        assert p99 == hist.percentile(99) == reservoir.percentile(99)
        assert peak == max(values)


class TestScenarioSlo:
    def test_healthy_preset_stays_inside_budget(self):
        report = run_scenario(PRESETS["rpc-sharded-slo"])
        slo = report["slo"]
        assert set(slo["slos"]) == {
            "availability", "latency_p99",
            *(f"availability.shard{i}" for i in range(4)),
            *(f"latency_p99.shard{i}" for i in range(4)),
        }
        for result in slo["slos"].values():
            assert result["events"] == []
            assert result["breached_windows"] == 0
        ts = report["results"]["timeseries"]
        assert ts["interval_ns"] == 200_000
        assert "completed" in ts["series"]
        assert "latency_ns{shard=0}" in ts["series"]

    def test_nic_stall_burns_error_budget_in_window(self):
        """Acceptance criterion: a NicStall on a server node fires a
        deterministic burn-rate breach inside (or right at the tail of)
        the fault window, localised to the stalled shard."""
        scenario = PRESETS["rpc-sharded-slo"]
        plan = FaultPlan(seed=scenario.seed, episodes=(STALL,))
        report = run_scenario(scenario, plan=plan)
        slos = report["slo"]["slos"]
        stalled = slos["latency_p99.shard1"]
        starts = [e for e in stalled["events"] if e["kind"] == "breach_start"]
        assert starts, "stalled shard never breached"
        interval = report["slo"]["interval_ns"]
        assert STALL.start_ns <= starts[0]["t_ns"] < STALL.end_ns + interval
        assert stalled["max_burn_rate"] > 1.0
        # The aggregate latency SLO sees it too; an unstalled shard stays
        # clean through the stall window itself.
        assert slos["latency_p99"]["breached_windows"] >= 1
        clean = slos["latency_p99.shard3"]
        for event in clean["events"]:
            assert not (STALL.start_ns <= event["t_ns"] < STALL.end_ns)
        # Availability burns too: the stall pushes clients past abandonment.
        assert report["results"]["drops"]["abandoned"] >= 1
        assert slos["availability"]["bad"] >= 1

    def test_fault_run_byte_identical(self):
        scenario = PRESETS["rpc-sharded-slo"]
        plan = FaultPlan(seed=scenario.seed, episodes=(STALL,))
        first = dumps_deterministic(run_scenario(scenario, plan=plan))
        second = dumps_deterministic(run_scenario(scenario, plan=plan))
        assert first == second

    def test_slo_absent_without_targets(self):
        report = run_scenario(PRESETS["rpc-sharded"])
        assert "slo" not in report
        assert "timeseries" not in report["results"]
