"""Spans, the metrics registry, and the Observer lifecycle."""

import pytest

from repro.hardware.memory import CopyMeter
from repro.obs.metrics import DEFAULT_WINDOW_NS, Histogram, Metrics, RateMeter
from repro.obs.observer import Observer
from repro.obs.span import LAYER_ORDER, Span, layer_rank
from repro.simkernel.monitor import Counters


class TestSpan:
    def test_duration_and_key(self):
        span = Span("fm", "inject", 100, 250, track="node0/fm",
                    attrs={"bytes": 16})
        assert span.duration_ns == 150
        assert span.key() == ("fm", "inject")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Span("fm", "inject", 250, 100)

    def test_layer_rank_orders_top_down(self):
        ranks = [layer_rank(layer) for layer in LAYER_ORDER]
        assert ranks == sorted(ranks)
        assert layer_rank("app") < layer_rank("fm") < layer_rank("fabric")
        assert layer_rank("no-such-layer") > layer_rank("fabric")


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        hist = Histogram("lat")
        for value in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
            hist.record(value)
        assert hist.p50 == 50
        assert hist.p99 == 100
        assert hist.percentile(0) == 10
        assert hist.percentile(100) == 100
        assert hist.mean == 55.0
        assert hist.count == 10
        assert hist.total == 550

    def test_single_sample(self):
        hist = Histogram("lat")
        hist.record(42)
        assert hist.p50 == hist.p99 == 42

    def test_empty_raises(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError):
            _ = hist.p50
        with pytest.raises(ValueError):
            _ = hist.mean

    def test_bad_percentile_rejected(self):
        hist = Histogram("lat")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestRateMeter:
    def test_buckets_by_window(self, env):
        meter = RateMeter(env, "bytes", window_ns=100)
        meter.mark(10)

        def worker(env):
            yield env.timeout(250)
            meter.mark(20)
        env.run(until=env.process(worker(env)))
        assert meter.total == 30
        assert meter.series() == [(0, 10), (200, 20)]

    def test_mean_rate(self, env):
        meter = RateMeter(env, "bytes", window_ns=1000)
        meter.mark(2000)   # 2000 bytes in one 1 us window = 2000 MB/s
        assert meter.mean_rate_mbs() == pytest.approx(2000.0)
        assert RateMeter(env, "idle").mean_rate_mbs() == 0.0

    def test_bad_window_rejected(self, env):
        with pytest.raises(ValueError):
            RateMeter(env, "x", window_ns=0)


class TestMetrics:
    def test_histogram_get_or_create_by_labels(self):
        metrics = Metrics()
        a = metrics.histogram("stage", stage="wire")
        b = metrics.histogram("stage", stage="wire")
        c = metrics.histogram("stage", stage="dma")
        assert a is b
        assert a is not c

    def test_label_subset_queries_sorted(self):
        metrics = Metrics()
        metrics.histogram("q", node="1", dir="rx").record(1)
        metrics.histogram("q", node="0", dir="rx").record(2)
        metrics.histogram("q", node="0", dir="tx").record(3)
        node0 = metrics.histograms("q", node="0")
        assert len(node0) == 2
        assert [h.labels["dir"] for h in node0] == ["rx", "tx"]
        assert len(metrics.histograms("q")) == 3
        assert metrics.histograms("other") == []

    def test_meter_requires_env(self):
        with pytest.raises(RuntimeError):
            Metrics().meter("bytes")

    def test_meter_get_or_create(self, env):
        metrics = Metrics(env)
        assert metrics.meter("b", link="l0") is metrics.meter("b", link="l0")
        assert len(metrics.meters("b")) == 1
        assert metrics.meters("b")[0].window_ns == DEFAULT_WINDOW_NS

    def test_federates_counters_and_copy_meters(self):
        metrics = Metrics()
        counters = Counters()
        counters.add("spills", 3)
        metrics.register_counters("mpi.rank0", counters)
        meter = CopyMeter()
        meter.record(64, "fm1.staging_copy")
        metrics.register_copy_meter("node0.cpu", meter)
        assert metrics.counter("mpi.rank0")["spills"] == 3
        assert metrics.copy_bytes_by_label() == {
            "node0.cpu": {"fm1.staging_copy": 64}
        }

    def test_duplicate_registration_rejected(self):
        metrics = Metrics()
        metrics.register_counters("x", Counters())
        with pytest.raises(ValueError):
            metrics.register_counters("x", Counters())
        metrics.register_copy_meter("y", CopyMeter())
        with pytest.raises(ValueError):
            metrics.register_copy_meter("y", CopyMeter())

    def test_as_dict_summary(self, env):
        metrics = Metrics(env)
        metrics.histogram("lat", stage="wire").record(100)
        metrics.meter("bytes", link="l0").mark(500)
        summary = metrics.as_dict()
        assert summary["histograms"]["lat{stage=wire}"]["count"] == 1
        assert summary["histograms"]["lat{stage=wire}"]["p50"] == 100
        assert summary["meters"]["bytes{link=l0}"]["total"] == 500


class TestObserver:
    def test_attach_detach(self, env):
        observer = Observer().attach(env)
        assert env.obs is observer
        assert observer.metrics.env is env
        observer.detach(env)
        assert env.obs is None

    def test_detach_only_removes_self(self, env):
        first = Observer().attach(env)
        second = Observer().attach(env)
        first.detach(env)          # no longer installed; must not clobber
        assert env.obs is second

    def test_span_default_end_is_now(self, env):
        observer = Observer().attach(env)

        def worker(env):
            yield env.timeout(40)
            observer.span("fm", "inject", 10, track="node0/fm", bytes=16)
        env.run(until=env.process(worker(env)))
        (span,) = observer.spans
        assert (span.t_start, span.t_end) == (10, 40)
        assert span.attrs == {"bytes": 16}

    def test_queries(self, env):
        observer = Observer().attach(env)
        observer.span("fm", "inject", 0, t_end=5, track="node0/fm")
        observer.span("nic", "tx_firmware", 5, t_end=9, track="node0/nic.tx")
        observer.span("fm", "inject", 9, t_end=12, track="node1/fm")
        assert len(observer.spans_for(layer="fm")) == 2
        assert len(observer.spans_for(layer="fm", track="node0/fm")) == 1
        assert observer.tracks() == ["node0/fm", "node0/nic.tx", "node1/fm"]
        assert len(observer) == 3

    def test_packet_done_builds_stage_histograms(self, env):
        from repro.hardware.packet import Packet, PacketFlags, PacketHeader
        observer = Observer().attach(env)
        packet = Packet(PacketHeader(0, 1, 0, 0, 0, 4,
                                     PacketFlags.FIRST | PacketFlags.LAST),
                        b"abcd")
        packet.stamp("submit", 100)
        packet.stamp("wire", 250)
        observer.packet_done(packet, "extract", 400)
        stages = {h.labels["stage"]: h.total
                  for h in observer.metrics.histograms("packet.stage")}
        assert stages == {"submit -> wire": 150, "wire -> extract": 150}
        (latency,) = observer.metrics.histograms("packet.latency_ns")
        assert latency.total == 300
