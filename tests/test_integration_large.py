"""Large-scale integration: 16 nodes on a fat tree running real workloads.

Everything below the application — switches, links, NICs, FM, MPI — is
exercised together at a scale the unit tests don't reach, with correctness
checked against numpy references.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmParams
from repro.hardware.topology import fat_tree_2level, switch_chain
from repro.upper.mpi import build_mpi_world

#: 16 hosts across 4 leaves and 2 spines.
FAT_TREE = fat_tree_2level(n_leaf_switches=4, hosts_per_leaf=4, n_spines=2)
#: Credits sized for 15 peers within the 256-slot receive region.
PARAMS16 = FmParams(packet_payload=1024, credits_per_peer=16, credit_batch=8)


def build16():
    return Cluster(16, machine=PPRO_FM2, fm_version=2, topology=FAT_TREE,
                   fm_params=PARAMS16)


class TestFatTree16:
    def test_allreduce_across_the_tree(self):
        cluster = build16()
        comms = build_mpi_world(cluster)
        results = {}

        def make(rank):
            def program(node):
                local = np.arange(16, dtype=np.float64) + rank
                results[rank] = yield from comms[rank].allreduce(local, np.add)
            return program

        cluster.run([make(rank) for rank in range(16)])
        expected = np.arange(16, dtype=np.float64) * 16 + sum(range(16))
        for rank in range(16):
            assert np.allclose(results[rank], expected)

    def test_alltoall_across_the_tree(self):
        cluster = build16()
        comms = build_mpi_world(cluster)
        results = {}

        def make(rank):
            def program(node):
                chunks = [bytes([rank, dest]) * 32 for dest in range(16)]
                results[rank] = yield from comms[rank].alltoall(chunks)
            return program

        cluster.run([make(rank) for rank in range(16)])
        for rank in range(16):
            assert results[rank] == [bytes([src, rank]) * 32
                                     for src in range(16)]

    def test_row_column_split_reductions(self):
        """Split the 16 ranks into a 4x4 grid; reduce along rows, then
        columns — the composite must equal the global sum."""
        cluster = build16()
        comms = build_mpi_world(cluster)
        results = {}

        def make(rank):
            def program(node):
                row_comm = yield from comms[rank].split(color=rank // 4)
                col_comm = yield from comms[rank].split(color=rank % 4)
                local = np.array([float(rank)])
                row_sum = yield from row_comm.allreduce(local, np.add)
                total = yield from col_comm.allreduce(row_sum, np.add)
                results[rank] = total[0]
            return program

        cluster.run([make(rank) for rank in range(16)])
        assert all(value == sum(range(16)) for value in results.values())

    def test_many_to_one_funnels_through_leaves(self):
        """15 senders into one receiver: spine contention, credits, and
        extraction all at once; every byte must arrive exactly once."""
        cluster = build16()
        received = {}

        def handler(fm, stream, src):
            data = yield from stream.receive_bytes(stream.msg_bytes)
            received[src] = data

        hid = {node.fm.register_handler(handler)
               for node in cluster.nodes}.pop()

        def make_sender(rank):
            def sender(node):
                payload = bytes([rank]) * (100 + rank * 40)
                buf = node.buffer(len(payload), fill=payload)
                yield from node.fm.send_buffer(15, hid, buf, len(payload))
            return sender

        def receiver(node):
            while len(received) < 15:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)

        cluster.run([make_sender(rank) for rank in range(15)] + [receiver])
        for rank in range(15):
            assert received[rank] == bytes([rank]) * (100 + rank * 40)


class TestChainAtScale:
    def test_heat_pipeline_on_a_chain(self):
        """An 8-node halo-exchange pipeline on a 4-switch chain topology:
        exercises multi-hop routing under the MPI layer."""
        topology = switch_chain(8, hosts_per_switch=2)
        cluster = Cluster(8, machine=PPRO_FM2, fm_version=2,
                          topology=topology)
        comms = build_mpi_world(cluster)
        rows_per = 2
        grid = np.arange(8 * rows_per * 4, dtype=np.float64).reshape(-1, 4)
        results = {}

        def make(rank):
            comm = comms[rank]

            def program(node):
                mine = grid[rank * rows_per: (rank + 1) * rows_per].copy()
                for _step in range(3):
                    top = mine[0].copy()
                    bottom = mine[-1].copy()
                    if rank > 0:
                        raw, _ = yield from comm.sendrecv(
                            mine[0].tobytes(), rank - 1, rank - 1,
                            sendtag=1, recvtag=2)
                        top = np.frombuffer(raw)
                    if rank < 7:
                        raw, _ = yield from comm.sendrecv(
                            mine[-1].tobytes(), rank + 1, rank + 1,
                            sendtag=2, recvtag=1)
                        bottom = np.frombuffer(raw)
                    stacked = np.vstack([top, mine, bottom])
                    mine = (stacked[:-2] + stacked[1:-1] + stacked[2:]) / 3
                results[rank] = mine
            return program

        cluster.run([make(rank) for rank in range(8)])

        # Single-process reference of the same smoothing.
        reference = grid.copy()
        for _step in range(3):
            padded = np.vstack([reference[0], reference, reference[-1]])
            reference = (padded[:-2] + padded[1:-1] + padded[2:]) / 3
        combined = np.vstack([results[rank] for rank in range(8)])
        assert np.allclose(combined, reference)
