"""CMAM overhead model (Figure 2): anchors, structure, scaling."""

import pytest

from repro.cmam import COMPONENTS, CmamCostModel, SequenceKind, Side


@pytest.fixture
def paper_case():
    """The configuration quoted verbatim in §2.3."""
    return CmamCostModel(message_words=16, packet_words=4)


class TestPaperAnchor:
    def test_total_397(self, paper_case):
        assert paper_case.total() == 397

    def test_buffer_management_148(self, paper_case):
        assert paper_case.cycles("buffer_mgmt") == 148

    def test_in_order_21(self, paper_case):
        assert paper_case.cycles("in_order") == 21

    def test_fault_tolerance_47(self, paper_case):
        assert paper_case.cycles("fault_tolerance") == 47

    def test_guarantees_are_216_of_397(self, paper_case):
        assert paper_case.guarantee_cycles() == 216

    def test_base_cost_is_the_remainder(self, paper_case):
        assert paper_case.cycles("base") == 397 - 216


class TestStructure:
    def test_total_is_src_plus_dest(self, paper_case):
        for component in COMPONENTS:
            for seq in SequenceKind:
                total = paper_case.cycles(component, Side.TOTAL, seq)
                parts = (paper_case.cycles(component, Side.SRC, seq)
                         + paper_case.cycles(component, Side.DEST, seq))
                assert total == parts

    def test_breakdown_sums_to_total(self, paper_case):
        for side in Side:
            for seq in SequenceKind:
                assert (sum(paper_case.breakdown(side, seq).values())
                        == paper_case.total(side, seq))

    def test_unknown_component_rejected(self, paper_case):
        with pytest.raises(ValueError, match="unknown component"):
            paper_case.cycles("nonsense")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            CmamCostModel(message_words=0)
        with pytest.raises(ValueError):
            CmamCostModel(packet_words=0)

    def test_packet_count(self):
        assert CmamCostModel(16, 4).n_packets == 4
        assert CmamCostModel(17, 4).n_packets == 5
        assert CmamCostModel(3, 4).n_packets == 1


class TestIndefiniteSequence:
    def test_costs_more_than_finite(self, paper_case):
        assert (paper_case.total(sequence=SequenceKind.INDEFINITE)
                > paper_case.total(sequence=SequenceKind.FINITE))

    def test_buffer_mgmt_inflates_most(self, paper_case):
        """Dynamic buffering is what the indefinite protocol pays for."""
        finite = paper_case.breakdown(sequence=SequenceKind.FINITE)
        indefinite = paper_case.breakdown(sequence=SequenceKind.INDEFINITE)
        ratios = {c: indefinite[c] / finite[c] for c in COMPONENTS if finite[c]}
        assert max(ratios, key=ratios.get) in ("buffer_mgmt", "fault_tolerance")

    def test_figure_scale(self, paper_case):
        """Figure 2's y-axis tops out at 500; indefinite total sits there."""
        total = paper_case.total(sequence=SequenceKind.INDEFINITE)
        assert 450 <= total <= 560


class TestGuaranteeFraction:
    def test_paper_band_50_to_70_percent(self, paper_case):
        """§2.3: 'up to 50%-70% of the software messaging costs are a direct
        consequence of the gap' — the model lands in that band."""
        for seq in SequenceKind:
            fraction = paper_case.guarantee_fraction(sequence=seq)
            assert 0.50 <= fraction <= 0.70

    def test_single_packet_message_cheaper(self):
        small = CmamCostModel(message_words=4, packet_words=4)
        assert small.total() < CmamCostModel(16, 4).total()

    def test_cost_scales_linearly_with_packets(self):
        four = CmamCostModel(16, 4).total()       # 4 packets
        eight = CmamCostModel(32, 4).total()      # 8 packets
        sixteen = CmamCostModel(64, 4).total()    # 16 packets
        slope_a = (eight - four) / (8 - 4)
        slope_b = (sixteen - eight) / (16 - 8)
        assert slope_a == slope_b                 # constant per-packet slope
