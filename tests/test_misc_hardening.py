"""Cross-cutting hardening: corners not owned by any one module's suite."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1
from repro.ext import SwRelParams, SwReliablePair
from repro.hardware.memory import Buffer
from repro.upper.mpi import build_mpi_world
from repro.upper.sockets import SocketStack, Wsa


class TestStopAndWait:
    def test_window_of_one_still_correct(self):
        """Degenerate go-back-N (stop-and-wait) delivers everything."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        pair = SwReliablePair(cluster, 0, 1,
                              params=SwRelParams(payload_bytes=256, window=1))
        payloads = [bytes([i]) * 700 for i in range(5)]
        got = []
        done = [False]

        def sender(node):
            for payload in payloads:
                yield from pair.send_message(payload)
            done[0] = True

        def receiver(node):
            while len(got) < 5 or not done[0] or pair.outstanding:
                messages = yield from pair.deliver()
                got.extend(messages)
                if not messages:
                    yield node.env.timeout(300)

        cluster.run([sender, receiver])
        assert got == payloads


class TestFm1BindingScanReduceScatter:
    def test_scan_over_fm1(self):
        cluster = Cluster(3, machine=SPARC_FM1, fm_version=1)
        comms = build_mpi_world(cluster)
        results = {}

        def make(rank):
            def program(node):
                out = yield from comms[rank].scan(
                    np.array([float(rank + 1)]), np.add)
                results[rank] = out[0]
            return program

        cluster.run([make(rank) for rank in range(3)])
        assert results == {0: 1.0, 1: 3.0, 2: 6.0}

    def test_reduce_scatter_over_fm1(self):
        cluster = Cluster(2, machine=SPARC_FM1, fm_version=1)
        comms = build_mpi_world(cluster)
        results = {}

        def make(rank):
            def program(node):
                local = np.arange(4, dtype=np.float64) * (rank + 1)
                results[rank] = yield from comms[rank].reduce_scatter(
                    local, np.add)
            return program

        cluster.run([make(rank) for rank in range(2)])
        full = np.arange(4, dtype=np.float64) * 3
        assert np.allclose(results[0], full[:2])
        assert np.allclose(results[1], full[2:])


class TestWsaOrdering:
    def test_queued_sends_preserve_stream_order(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        stacks = [SocketStack(node) for node in cluster.nodes]
        out = {}

        def server(node):
            stacks[0].listen()
            sock = yield from stacks[0].accept()
            out["stream"] = yield from sock.recv_exactly(9)

        def client(node):
            wsa = Wsa(stacks[1])
            sock = yield from stacks[1].connect(0)
            operations = [wsa.send(sock, part)
                          for part in (b"one", b"two", b"333")]
            for operation in operations:
                yield from wsa.get_overlapped_result(operation)

        cluster.run([server, client])
        assert out["stream"] == b"onetwo333"


class TestBufferAliasSafety:
    def test_fm2_sender_may_reuse_buffer_after_send_returns(self):
        """Once send_buffer returns, the payload has crossed the bus: the
        application may overwrite its buffer (the FM contract)."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        got = []

        def handler(fm, stream, src):
            got.append((yield from stream.receive_bytes(stream.msg_bytes)))

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(64, fill=b"A" * 64)
            yield from node.fm.send_buffer(1, hid, buf, 64)
            buf.write(b"B" * 64)     # clobber immediately
            yield from node.fm.send_buffer(1, hid, buf, 64)

        def receiver(node):
            while len(got) < 2:
                extracted = yield from node.fm.extract()
                if not extracted:
                    yield node.env.timeout(500)

        cluster.run([sender, receiver])
        assert got == [b"A" * 64, b"B" * 64]


class TestZeroAndOddSizes:
    @pytest.mark.parametrize("size", [0, 1, 15, 17, 1023, 1025])
    def test_mpi_boundary_sizes(self, size):
        """Sizes straddling the send_4 and packet boundaries roundtrip."""
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        comms = build_mpi_world(cluster)
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        out = {}

        def rank0(node):
            yield from comms[0].send(payload, 1, tag=1)

        def rank1(node):
            data, status = yield from comms[1].recv(0, 1, max_bytes=size + 1)
            out["data"], out["count"] = data, status.count

        cluster.run([rank0, rank1])
        assert out["data"] == payload
        assert out["count"] == size
