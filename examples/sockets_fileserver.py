#!/usr/bin/env python3
"""A file server over Sockets-FM: request/response byte streams.

One node serves named blobs; two client nodes connect, request files, and
stream them down.  Shows the socket API (listen/accept/connect,
send/recv), receive posting (``recv_into`` straight into the client's
destination buffer), and receiver pacing (a deliberately slow reader that
back-pressures the sender through FM flow control instead of buffering).

Run:  python examples/sockets_fileserver.py
"""

import struct

from repro import Buffer, Cluster, PPRO_FM2
from repro.simkernel.units import ns_to_us
from repro.upper.sockets import SocketStack

FILES = {
    "readme.txt": b"Fast Messages 2.x: efficient layering for high speed communication.\n" * 40,
    "data.bin": bytes(i % 256 for i in range(16384)),
}


def main() -> None:
    cluster = Cluster(3, machine=PPRO_FM2, fm_version=2)
    stacks = [SocketStack(node) for node in cluster.nodes]

    def server(node):
        stack = stacks[0]
        stack.listen()
        for _ in range(2):                       # serve two clients
            sock = yield from stack.accept()
            name_len = struct.unpack("<i", (yield from sock.recv_exactly(4)))[0]
            name = (yield from sock.recv_exactly(name_len)).decode()
            blob = FILES.get(name, b"")
            yield from sock.send(struct.pack("<i", len(blob)))
            yield from sock.send(blob)
            yield from sock.close()
            print(f"[{ns_to_us(node.env.now):9.1f} us] server: sent "
                  f"{name!r} ({len(blob)} bytes)")

    def make_client(node_id: int, filename: str, slow: bool):
        def client(node):
            stack = stacks[node_id]
            sock = yield from stack.connect(0)
            name = filename.encode()
            yield from sock.send(struct.pack("<i", len(name)))
            yield from sock.send(name)
            size = struct.unpack("<i", (yield from sock.recv_exactly(4)))[0]
            if slow:
                # A paced reader: small reads with compute in between; FM
                # flow control holds the rest of the file in the network.
                got = 0
                while got < size:
                    chunk = yield from sock.recv(512)
                    got += len(chunk)
                    yield from node.cpu.compute(20_000)   # 20 us of "work"
                data_ok = got == size
            else:
                # Receive posting: the whole blob lands directly in `dest`.
                dest = Buffer(size, name=f"client{node_id}.dest")
                yield from sock.recv_into(dest, 0, size)
                data_ok = dest.read() == FILES[filename]
            print(f"[{ns_to_us(node.env.now):9.1f} us] client{node_id}: "
                  f"{filename!r} -> {size} bytes "
                  f"({'paced reader' if slow else 'posted receive'}) "
                  f"ok={data_ok}")
        return client

    cluster.run([
        server,
        make_client(1, "data.bin", slow=False),
        make_client(2, "readme.txt", slow=True),
    ])
    print(f"\ntotal simulated time: {ns_to_us(cluster.now):.1f} us")


if __name__ == "__main__":
    main()
