#!/usr/bin/env python3
"""GUPS-style random access: the short-message workload FM was built for.

§2.1 of the paper: most real traffic is short messages, so a messaging
layer must deliver its performance *to short messages*.  The classic
kernel with that profile is random table update (GUPS): every node fires
16-byte update messages at random slots of a table scattered across the
cluster — exactly ``FM_send_4`` territory.

Termination uses FM's in-order guarantee directly: after its last update,
each node sends a DONE marker to every peer; because delivery is FIFO per
sender, a DONE certifies that *all* of that sender's updates have already
been processed — no acks, no timeouts (§3.1's "right guarantees" argument
in action).

Runs the same kernel on FM 1.x (Sparc) and FM 2.x (PPro) and reports
updates/second.  Verified: the table's total equals the updates issued.

Run:  python examples/gups_random_access.py
"""

import struct

import numpy as np

from repro import Cluster, SPARC_FM1, PPRO_FM2
from repro.core.fm1.api import SEND4_BYTES

N_NODES = 4
TABLE_SLOTS_PER_NODE = 64
UPDATES_PER_NODE = 150

KIND_UPDATE = 1
KIND_DONE = 2


def run_gups(machine, fm_version: int) -> tuple[float, int]:
    """Returns (updates per second, table checksum)."""
    cluster = Cluster(N_NODES, machine=machine, fm_version=fm_version)
    rng = np.random.default_rng(7)
    # Pre-draw each node's update stream (slot owner, slot index, value).
    streams = [
        [(int(owner), int(slot), int(value)) for owner, slot, value in zip(
            rng.integers(0, N_NODES, UPDATES_PER_NODE),
            rng.integers(0, TABLE_SLOTS_PER_NODE, UPDATES_PER_NODE),
            rng.integers(1, 100, UPDATES_PER_NODE))]
        for _node in range(N_NODES)
    ]
    tables = [np.zeros(TABLE_SLOTS_PER_NODE, dtype=np.int64)
              for _ in range(N_NODES)]
    dones = [0] * N_NODES
    marks = {}

    def pack(kind: int, slot: int, value: int) -> bytes:
        return struct.pack("<iiii", kind, slot, value, 0)

    if fm_version == 1:
        def handler(fm, src, staging, nbytes):
            kind, slot, value, _pad = struct.unpack("<iiii",
                                                    staging.read(0, 16))
            if kind == KIND_UPDATE:
                tables[fm.node_id][slot] += value
            else:
                dones[fm.node_id] += 1
            return
            yield  # pragma: no cover
    else:
        def handler(fm, stream, src):
            raw = yield from stream.receive_bytes(SEND4_BYTES)
            kind, slot, value, _pad = struct.unpack("<iiii", raw)
            if kind == KIND_UPDATE:
                tables[stream.fm.node_id][slot] += value
            else:
                dones[stream.fm.node_id] += 1

    hid = {node.fm.register_handler(handler) for node in cluster.nodes}.pop()

    def send16(node, dest, payload):
        if fm_version == 1:
            yield from node.fm.send_4(dest, hid, payload)
        else:
            buf = node.buffer(SEND4_BYTES, fill=payload)
            yield from node.fm.send_buffer(dest, hid, buf, SEND4_BYTES)

    def make_program(me: int):
        def program(node):
            if me == 0:
                marks["start"] = node.env.now
            for owner, slot, value in streams[me]:
                if owner == me:
                    tables[me][slot] += value       # local update, no message
                else:
                    yield from send16(node, owner, pack(KIND_UPDATE, slot, value))
                # Service incoming updates as we go (polling discipline).
                yield from node.fm.extract()
            for peer in range(N_NODES):
                if peer != me:
                    yield from send16(node, peer, pack(KIND_DONE, 0, 0))
            # FIFO termination: once every peer's DONE has arrived, all
            # their updates have been applied.
            while dones[me] < N_NODES - 1:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
            marks[f"end{me}"] = node.env.now
        return program

    cluster.run([make_program(me) for me in range(N_NODES)])
    elapsed_s = (max(marks[f"end{m}"] for m in range(N_NODES))
                 - marks["start"]) / 1e9
    total_updates = N_NODES * UPDATES_PER_NODE
    checksum = int(sum(int(t.sum()) for t in tables))
    expected = sum(v for stream in streams for _o, _s, v in stream)
    assert checksum == expected, "updates lost or duplicated!"
    return total_updates / elapsed_s, checksum


def main() -> None:
    print(f"GUPS random access: {N_NODES} nodes x {UPDATES_PER_NODE} "
          f"16-byte updates\n")
    for label, machine, version in (("FM 1.x / Sparc (FM_send_4)", SPARC_FM1, 1),
                                    ("FM 2.x / PPro", PPRO_FM2, 2)):
        rate, checksum = run_gups(machine, version)
        print(f"  {label:<28} {rate / 1e3:8.1f} K updates/s   "
              f"(checksum {checksum}, exactly once)")
    print("\nTermination by FIFO DONE markers: in-order delivery (§3.1) "
          "replaces ack machinery.")


if __name__ == "__main__":
    main()
