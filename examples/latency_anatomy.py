#!/usr/bin/env python3
"""The anatomy of a microsecond: where FM's latency and bandwidth go.

A guided tour of the analysis tools: the per-stage journey of one 16-byte
message on both FM generations (waypoint-instrumented packets), the
component-utilisation profile of a bandwidth stream, and the first-order
analytic model's predictions next to the simulated measurements — the
workflow a performance engineer would use on this library.

Each journey also runs with the observability layer attached and is
exported as a Perfetto/Chrome trace-event file under ``out/`` — open it at
https://ui.perfetto.dev to see every layer crossing on its own track.

Run:  python examples/latency_anatomy.py
"""

from pathlib import Path

from repro.bench.calibration import (
    predicted_bandwidth_mbs,
    predicted_latency_us,
)
from repro.bench.journey import packet_journey_detail
from repro.bench.microbench import fm_pingpong_latency_us, fm_stream_bandwidth_mbs
from repro.bench.utilization import fm_stream_utilization
from repro.cluster import Cluster
from repro.cluster.cluster import default_fm_params
from repro.configs import PPRO_FM2, SPARC_FM1
from repro.obs.export import export_trace
from repro.obs.observer import Observer


def main() -> None:
    for label, machine, version, paper_lat, paper_bw in (
        ("FM 1.x on Sparc/SBus", SPARC_FM1, 1, 14.0, 17.6),
        ("FM 2.x on PPro/PCI", PPRO_FM2, 2, 11.0, 77.0),
    ):
        print(f"=== {label} ===\n")

        observer = Observer()
        journey, _cluster = packet_journey_detail(machine, version,
                                                  msg_bytes=16,
                                                  observer=observer)
        print("one 16-byte message, stage by stage:")
        print(journey.render())
        print(f"slowest stage: {journey.longest_stage()}")
        trace_path = export_trace(
            observer, Path("out") / f"latency_anatomy_fm{version}.json")
        print(f"perfetto trace : {trace_path} "
              f"({len(observer.spans)} spans — open at ui.perfetto.dev)\n")

        latency = fm_pingpong_latency_us(Cluster(2, machine, version), 16,
                                         iterations=10)
        bandwidth = fm_stream_bandwidth_mbs(Cluster(2, machine, version),
                                            2048, n_messages=40)
        params = default_fm_params(version)
        print(f"ping-pong latency : {latency:6.2f} us   "
              f"(paper {paper_lat}, model "
              f"{predicted_latency_us(machine, params):.2f})")
        print(f"bandwidth @ 2 KB  : {bandwidth:6.2f} MB/s "
              f"(paper {paper_bw}, model "
              f"{predicted_bandwidth_mbs(machine, params, 2048):.2f})\n")

        util = fm_stream_utilization(machine, version, 2048, n_messages=40)
        print("streaming at 2 KB, who is busy:")
        for metric, value in util.rows():
            print(f"  {metric:<26} {value}")
        print()


if __name__ == "__main__":
    main()
