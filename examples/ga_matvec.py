#!/usr/bin/env python3
"""Distributed matrix-vector iteration with Global Arrays over Shmem-FM.

Power iteration on a distributed matrix: the matrix lives in a Global
Array (block-row distribution); each PE computes its rows' contribution to
``y = A x`` locally, publishes its slice of ``y`` with one-sided ``put``,
and reads the full vector back with ``get`` after a ``sync`` — the
get/put/sync idiom Global Arrays programs are built from.  Checked against
numpy's dominant eigenvector at the end.

Run:  python examples/ga_matvec.py
"""

import numpy as np

from repro import Cluster, PPRO_FM2
from repro.simkernel.units import ns_to_us
from repro.upper.ga import GlobalArray
from repro.upper.shmem import Shmem

N_PES = 4
N = 16               # matrix is N x N
ITERATIONS = 8


def build_matrix() -> np.ndarray:
    rng = np.random.default_rng(42)
    a = rng.random((N, N))
    symmetric = (a + a.T) / 2
    # A strong rank-1 component gives a well-separated dominant eigenvalue,
    # so the power iteration converges in the few steps we simulate.
    u = np.ones(N) / np.sqrt(N)
    return symmetric + 4 * N * np.outer(u, u)


def main() -> None:
    cluster = Cluster(N_PES, machine=PPRO_FM2, fm_version=2)
    shmems = [Shmem(node, N_PES) for node in cluster.nodes]
    matrices = [GlobalArray(shmems[i], 1, rows=N, cols=N) for i in range(N_PES)]
    vectors = [GlobalArray(shmems[i], 2, rows=N, cols=1) for i in range(N_PES)]
    matrix = build_matrix()
    rows = N // N_PES
    final = {}

    def make_program(pe: int):
        shmem, ga_a, ga_v = shmems[pe], matrices[pe], vectors[pe]

        def program(node):
            # Collective initialisation: each PE fills its own blocks.
            ga_a.local_view()[:] = matrix[pe * rows: (pe + 1) * rows]
            ga_v.local_view()[:] = 1.0 / np.sqrt(N)
            yield from shmem.barrier()

            for it in range(ITERATIONS):
                x = yield from ga_v.get(0, N)           # full current vector
                # Everyone must finish *reading* x before anyone overwrites
                # their slice — the standard GA read/write phase barrier.
                yield from shmem.barrier()
                local_a = ga_a.local_view()
                y_local = local_a @ x                    # my rows of A x
                yield from ga_v.put(pe * rows, y_local)
                yield from ga_v.sync()
                # Everyone normalises identically from the full y.
                y = yield from ga_v.get(0, N)
                yield from shmem.barrier()
                if pe == 0 and it % 2 == 1:
                    print(f"[{ns_to_us(node.env.now):9.1f} us] iter {it + 1}: "
                          f"|y| = {float(np.linalg.norm(y)):.3f}")
                y = y / np.linalg.norm(y)
                yield from ga_v.put(pe * rows, y[pe * rows: (pe + 1) * rows])
                yield from ga_v.sync()
            result = yield from ga_v.get(0, N)
            final[pe] = result.ravel()
            # Final barrier (shmem_finalize): keep serving one-sided
            # requests until every PE has finished its last get.
            yield from shmem.barrier()

        return program

    cluster.run([make_program(pe) for pe in range(N_PES)])

    estimate = final[0]
    eigvals, eigvecs = np.linalg.eigh(matrix)
    dominant = eigvecs[:, -1]
    dominant *= np.sign(dominant @ estimate)             # fix sign
    angle_err = float(np.abs(1 - abs(dominant @ estimate)))
    agreement = all(np.allclose(final[0], final[pe]) for pe in range(N_PES))
    print(f"\nall PEs agree on the vector: {agreement}")
    print(f"alignment error vs numpy eigenvector: {angle_err:.2e} "
          f"({'OK' if angle_err < 1e-3 else 'NOT CONVERGED'})")
    print(f"total simulated time: {ns_to_us(cluster.now):.1f} us")


if __name__ == "__main__":
    main()
