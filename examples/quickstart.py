#!/usr/bin/env python3
"""Quickstart: the FM 2.x API end to end on a two-node simulated cluster.

Demonstrates the full Table-2 surface — ``FM_begin_message`` /
``FM_send_piece`` / ``FM_end_message`` on the sender, a handler using
``FM_receive`` on the receiver, and paced ``FM_extract(bytes)`` — then
measures the two headline microbenchmarks the paper reports for FM 2.x
(one-way latency and peak bandwidth).

Run:  python examples/quickstart.py
"""

from repro import Cluster, PPRO_FM2
from repro.bench.microbench import fm_pingpong_latency_us, fm_stream_bandwidth_mbs
from repro.simkernel.units import ns_to_us


def main() -> None:
    cluster = Cluster(n_nodes=2, machine=PPRO_FM2, fm_version=2)
    received = []

    # An FM 2.x handler: a generator that consumes its message as a stream.
    # It reads an 8-byte application header first, then the payload —
    # the piecewise (scatter) receive that FM 1.x could not express.
    def handler(fm, stream, src):
        header = yield from stream.receive_bytes(8)
        body = yield from stream.receive_bytes(stream.msg_bytes - 8)
        received.append((src, header, body))

    handler_id = [node.fm.register_handler(handler) for node in cluster.nodes][0]

    message = b"FMHEADER" + b"the quick brown fox jumped over the lazy dog" * 20

    def sender(node):
        buf = node.buffer(len(message), fill=message)
        # Gather: compose the message from two pieces of arbitrary size.
        stream = yield from node.fm.begin_message(1, len(message), handler_id)
        yield from node.fm.send_piece(stream, buf, 0, 8)
        yield from node.fm.send_piece(stream, buf, 8, len(message) - 8)
        yield from node.fm.end_message(stream)
        print(f"[{ns_to_us(node.env.now):9.2f} us] node0: message sent "
              f"({len(message)} bytes)")

    def receiver(node):
        while not received:
            # Receiver flow control: present at most 2 KB per extract call.
            got = yield from node.fm.extract(max_bytes=2048)
            if not got:
                yield node.env.timeout(500)
        src, header, body = received[0]
        print(f"[{ns_to_us(node.env.now):9.2f} us] node1: from node{src}, "
              f"header={header!r}, payload={len(body)} bytes intact="
              f"{header + body == message}")

    cluster.run([sender, receiver])

    print("\nFM 2.x headline microbenchmarks (paper: 11 us, 77 MB/s):")
    latency = fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), msg_bytes=16)
    print(f"  one-way latency, 16 B : {latency:6.2f} us")
    for size in (128, 1024, 2048):
        bandwidth = fm_stream_bandwidth_mbs(Cluster(2, PPRO_FM2, 2), size)
        print(f"  bandwidth, {size:5d} B   : {bandwidth:6.2f} MB/s")


if __name__ == "__main__":
    main()
