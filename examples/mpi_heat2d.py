#!/usr/bin/env python3
"""2-D heat diffusion with MPI-FM: the classic halo-exchange workload.

A Jacobi iteration on a 2-D grid, row-partitioned across four ranks.  Each
step every rank exchanges boundary rows with its neighbours (point-to-point
sendrecv) and every few steps the global residual is computed with
``allreduce`` — the communication pattern the paper's MPI users cared
about.  Verified against a single-process numpy reference at the end.

Run:  python examples/mpi_heat2d.py
"""

import numpy as np

from repro import Cluster, PPRO_FM2
from repro.simkernel.units import ns_to_us
from repro.upper.mpi import build_mpi_world
from repro.upper.mpi.comm import from_bytes, to_bytes

N_RANKS = 4
GRID = 32            # GRID x GRID points, GRID/N_RANKS rows per rank
STEPS = 20
ALPHA = 0.1


def reference(initial: np.ndarray, steps: int) -> np.ndarray:
    """Single-process Jacobi reference."""
    grid = initial.copy()
    for _ in range(steps):
        padded = np.pad(grid, 1, mode="edge")
        lap = (padded[:-2, 1:-1] + padded[2:, 1:-1]
               + padded[1:-1, :-2] + padded[1:-1, 2:] - 4 * grid)
        grid = grid + ALPHA * lap
    return grid


def initial_grid() -> np.ndarray:
    grid = np.zeros((GRID, GRID))
    grid[GRID // 4: GRID // 2, GRID // 4: GRID // 2] = 100.0  # hot block
    return grid


def main() -> None:
    cluster = Cluster(N_RANKS, machine=PPRO_FM2, fm_version=2)
    comms = build_mpi_world(cluster)
    rows = GRID // N_RANKS
    results: dict[int, np.ndarray] = {}

    def make_program(rank: int):
        comm = comms[rank]

        def program(node):
            full = initial_grid()
            mine = full[rank * rows: (rank + 1) * rows].copy()
            up, down = rank - 1, rank + 1
            for step in range(STEPS):
                # Halo exchange: first row up, last row down.
                top_halo = mine[0].copy()      # fallback: edge padding
                bottom_halo = mine[-1].copy()
                if up >= 0:
                    raw, _ = yield from comm.sendrecv(
                        to_bytes(mine[0]), up, up, sendtag=10, recvtag=11)
                    top_halo = from_bytes(raw, np.float64)
                if down < N_RANKS:
                    raw, _ = yield from comm.sendrecv(
                        to_bytes(mine[-1]), down, down, sendtag=11, recvtag=10)
                    bottom_halo = from_bytes(raw, np.float64)
                padded = np.vstack([top_halo, mine, bottom_halo])
                padded = np.pad(padded, ((0, 0), (1, 1)), mode="edge")
                lap = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                       + padded[1:-1, :-2] + padded[1:-1, 2:] - 4 * mine)
                mine = mine + ALPHA * lap
                if step % 5 == 4:
                    local = np.array([np.square(lap).sum()])
                    total = yield from comm.allreduce(local)
                    if rank == 0:
                        print(f"[{ns_to_us(node.env.now):9.1f} us] "
                              f"step {step + 1:3d}  residual {total[0]:.4f}")
            results[rank] = mine

        return program

    cluster.run([make_program(r) for r in range(N_RANKS)])
    combined = np.vstack([results[r] for r in range(N_RANKS)])
    expected = reference(initial_grid(), STEPS)
    err = np.abs(combined - expected).max()
    print(f"\nmax |MPI - reference| = {err:.2e}  "
          f"({'OK' if err < 1e-9 else 'MISMATCH'})")
    print(f"simulated wall time for {STEPS} steps on {N_RANKS} ranks: "
          f"{ns_to_us(cluster.now):.1f} us")


if __name__ == "__main__":
    main()
