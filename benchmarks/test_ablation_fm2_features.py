"""Ablation of the three FM 2.x features the paper argues for (§4.1).

For each of gather/scatter, layer interleaving, and receiver flow control,
MPI is rebuilt with just that feature disabled and the workload rerun.
Two workloads are used, because the features bite in different regimes:

* a **pre-posted streaming** test (the Figure 6 workload) shows the
  bandwidth cost of gather and interleaving;
* an **un-posted burst** test (receives posted only after the burst lands)
  shows what receiver pacing prevents: unexpected-pool overrun and spill
  copies.

Copy-meter bytes are reported alongside bandwidth so a feature whose cost
pipelines away (e.g. a receive-side copy when the sender is the
bottleneck) is still attributed.
"""

import pytest

from conftest import run_once
from repro.bench.mpibench import POSTED_WINDOW
from repro.bench.report import HeadlineRow, curve_table, headline_table
from repro.bench.sweeps import SweepResult, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.upper.mpi.ablations import ABLATIONS
from repro.upper.mpi.world import build_mpi_world

SIZES = (16, 256, 2048)
BURST_SIZE = 1024
BURST_COUNT = 16


def measure_stream(binding_cls, costs, size, n_messages=30):
    """Pre-posted streaming bandwidth; returns (MB/s, recv copy bytes)."""
    cluster = Cluster(2, PPRO_FM2, 2)
    comms = build_mpi_world(cluster, costs=costs, binding_cls=binding_cls)
    payload = bytes(size)
    marks = {}

    def sender(node):
        marks["start"] = node.env.now
        for _ in range(n_messages):
            yield from comms[0].send(payload, 1, tag=1)

    def receiver(node):
        pending = []
        posted = 0
        for _ in range(min(POSTED_WINDOW, n_messages)):
            pending.append((yield from comms[1].irecv(0, 1, max_bytes=size)))
            posted += 1
        completed = 0
        while completed < n_messages:
            req = pending.pop(0)
            yield from comms[1].wait(req)
            completed += 1
            if posted < n_messages:
                pending.append((yield from comms[1].irecv(0, 1,
                                                          max_bytes=size)))
                posted += 1
        marks["end"] = node.env.now

    cluster.run([sender, receiver])
    elapsed = marks["end"] - marks["start"]
    bandwidth = size * n_messages / (elapsed / 1e9) / 1e6
    return bandwidth, cluster.node(1).cpu.meter.bytes


def measure_burst(binding_cls, costs):
    """Un-posted burst; returns (spill copies, unexpected, recv copy bytes)."""
    cluster = Cluster(2, PPRO_FM2, 2)
    comms = build_mpi_world(cluster, costs=costs, binding_cls=binding_cls)

    def sender(node):
        for _ in range(BURST_COUNT):
            yield from comms[0].send(bytes(BURST_SIZE), 1, tag=1)

    def receiver(node):
        engine = comms[1].engine
        while engine.stats_unexpected < BURST_COUNT:
            yield from engine.progress()
            yield node.env.timeout(1_000)
        for _ in range(BURST_COUNT):
            yield from comms[1].recv(0, 1)

    cluster.run([sender, receiver])
    engine = comms[1].engine
    return engine.stats_spills, engine.stats_unexpected, \
        cluster.node(1).cpu.meter.bytes


def test_ablation_fm2_features(benchmark, show):
    def regenerate():
        stream = {label: [measure_stream(b, c, size) for size in SIZES]
                  for label, (b, c) in ABLATIONS.items()}
        burst = {label: measure_burst(b, c)
                 for label, (b, c) in ABLATIONS.items()
                 if label in ("full FM 2.x", "no pacing")}
        return stream, burst

    stream, burst = run_once(benchmark, regenerate)
    fm_base = bandwidth_sweep(PPRO_FM2, 2, SIZES, n_messages=30, label="raw FM")
    sweeps = [fm_base] + [
        SweepResult(label, list(SIZES), [bw for bw, _copies in rows])
        for label, rows in stream.items()
    ]
    show(curve_table("Ablation — pre-posted MPI stream, one feature "
                     "disabled at a time", sweeps))
    show(headline_table("Ablation — receive-side copy traffic and overrun", [
        HeadlineRow("recv copies @2KB, full", "-",
                    f"{stream['full FM 2.x'][2][1]} B"),
        HeadlineRow("recv copies @2KB, no interleaving", "-",
                    f"{stream['no interleaving'][2][1]} B"),
        HeadlineRow("burst spills, full (paced)", "0",
                    str(burst["full FM 2.x"][0])),
        HeadlineRow("burst spills, no pacing", "> 0",
                    str(burst["no pacing"][0])),
    ]))

    full = stream["full FM 2.x"]
    # Gather: the per-byte assembly copy costs bandwidth at large sizes.
    assert stream["no gather"][2][0] < 0.90 * full[2][0]
    # Interleaving: the staging copy may pipeline under the sender
    # bottleneck, but it is real CPU copy traffic — roughly double.
    assert stream["no interleaving"][2][1] > 1.7 * full[2][1]
    assert stream["no interleaving"][2][0] <= full[2][0] * 1.02
    # Pacing: with paced extraction the burst never spills; without it the
    # small pool overruns and pays spill copies, exactly §3.2's pathology.
    assert burst["full FM 2.x"][0] == 0
    assert burst["no pacing"][0] > 0
    assert burst["no pacing"][2] > burst["full FM 2.x"][2]
    # No ablation beats the full configuration at the large size.
    for label in ("no gather", "no interleaving", "no pacing"):
        assert stream[label][2][0] <= full[2][0] * 1.02, label
