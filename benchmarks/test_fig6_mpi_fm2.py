"""Figure 6: MPI-FM 2.0 vs FM 2.0 — the paper's bottom line.

Paper claims reproduced: MPI over FM 2.x achieves ~70 MB/s peak (vs 77 on
raw FM), 17 µs latency, and delivers 70% of FM's bandwidth even at 16-byte
messages, rising to ~90% — because gather/scatter removes the assembly
copy, interleaving steers payloads into pre-posted buffers, and
FM_extract(bytes) prevents buffer-pool overruns.
"""

import pytest

from conftest import run_once
from repro.bench.mpibench import mpi_pingpong_latency_us, mpi_stream
from repro.bench.report import HeadlineRow, curve_table, efficiency_table, headline_table
from repro.bench.sweeps import FIG456_SIZES, SweepResult, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import PPRO_FM2


def test_fig6_mpi_fm2_efficiency(benchmark, show):
    def regenerate():
        fm = bandwidth_sweep(PPRO_FM2, 2, FIG456_SIZES, n_messages=40,
                             label="FM 2.0")
        mpi_bandwidths = []
        for size in FIG456_SIZES:
            cluster = Cluster(2, PPRO_FM2, 2)
            mpi_bandwidths.append(
                mpi_stream(cluster, size, n_messages=30).bandwidth_mbs)
        mpi = SweepResult("MPI-FM 2.0", list(FIG456_SIZES), mpi_bandwidths)
        latency = mpi_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), 16,
                                          iterations=12)
        return fm, mpi, latency

    fm, mpi, latency = run_once(benchmark, regenerate)
    show(curve_table("Figure 6(a) — MPI-FM 2.0 vs FM 2.0 (absolute)",
                     [fm, mpi]))
    show(efficiency_table("Figure 6(b) — MPI-FM 2.0 efficiency", mpi, fm))
    show(headline_table("MPI-FM 2.x headline metrics", [
        HeadlineRow("one-way latency (16 B)", "17 us", f"{latency:.1f} us",
                    "lean MPI layer"),
        HeadlineRow("peak bandwidth", "70 MB/s", f"{mpi.peak_mbs:.1f} MB/s"),
        HeadlineRow("efficiency @ 16 B", ">= 70%",
                    f"{100 * mpi.at(16) / fm.at(16):.0f}%"),
        HeadlineRow("efficiency @ 2 KB", "~90%",
                    f"{100 * mpi.at(2048) / fm.at(2048):.0f}%"),
    ]))

    efficiencies = [m / f for m, f in zip(mpi.bandwidths_mbs, fm.bandwidths_mbs)]
    assert mpi.peak_mbs == pytest.approx(70.0, rel=0.15)
    assert 12.0 <= latency <= 19.6
    # The abstract's band: 70-90% delivered to MPI across the size range.
    assert 0.62 <= efficiencies[0] <= 0.80
    assert efficiencies[-1] >= 0.85
    assert all(e >= 0.62 for e in efficiencies)
    assert efficiencies[0] < efficiencies[-1]
