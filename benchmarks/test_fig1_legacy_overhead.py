"""Figure 1: Ethernet theoretical bandwidth under a fixed 125 µs protocol
processing overhead, for 100 Mbit and 1 Gbit wires, message sizes 8-1024 B.

Paper claims reproduced: both curves are overhead-bound and nearly
indistinguishable below ~256 B; even at 1024 B the 1 Gbit wire delivers
under 8 MB/s — the motivation for a low-overhead messaging layer.
"""

import pytest

from conftest import run_once
from repro.bench.report import curve_table
from repro.bench.sweeps import SweepResult
from repro.legacy import (
    ETHERNET_100MBIT,
    ETHERNET_1GBIT,
    FixedOverheadStack,
    theoretical_bandwidth_mbs,
)

SIZES = [8, 16, 32, 64, 128, 256, 512, 1024]


def test_fig1_legacy_bandwidth_curves(benchmark, show):
    def regenerate():
        mbit = [theoretical_bandwidth_mbs(s, ETHERNET_100MBIT) for s in SIZES]
        gbit = [theoretical_bandwidth_mbs(s, ETHERNET_1GBIT) for s in SIZES]
        # Also exercise the simulated stack at a few sizes as a cross-check.
        sim = [FixedOverheadStack(ETHERNET_1GBIT).measure_bandwidth_mbs(s)
               for s in (8, 256, 1024)]
        return mbit, gbit, sim

    mbit, gbit, sim = run_once(benchmark, regenerate)
    show(curve_table(
        "Figure 1 — legacy stack bandwidth, 125 us/packet overhead",
        [SweepResult("100 Mbit/s", SIZES, mbit),
         SweepResult("1 Gbit/s", SIZES, gbit)],
    ))

    # Shape: short messages are overhead-bound on both wires.
    for i, size in enumerate(SIZES):
        if size <= 256:
            assert gbit[i] / mbit[i] < 1.2
            assert gbit[i] < 2.1
    # At 1024 B the curves finally separate, but stay under ~8 MB/s.
    assert gbit[-1] == pytest.approx(7.7, rel=0.05)
    assert mbit[-1] == pytest.approx(4.95, rel=0.05)
    # Simulated pipeline agrees with the analytic curve.
    assert sim[2] == pytest.approx(gbit[-1], rel=0.10)
