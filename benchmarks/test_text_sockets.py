"""§3.2/§5's sockets claims: Sockets-FM with receive posting and pacing.

Regenerates a socket streaming benchmark and demonstrates the two
copy-avoidance behaviours the paper discusses for stream APIs: posted
receives land in the destination buffer (Fast Sockets' receive posting,
achieved here via FM 2.x interleaving), and a paced reader bounds socket
buffering by back-pressuring the sender.
"""

import pytest

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.hardware.memory import Buffer
from repro.upper.sockets import SocketStack

TOTAL = 64 * 1024


def test_text_sockets_stream(benchmark, show):
    def exercise():
        cluster = Cluster(2, PPRO_FM2, 2)
        stacks = [SocketStack(node) for node in cluster.nodes]
        metrics = {}

        def server(node):
            stacks[0].listen()
            sock = yield from stacks[0].accept()
            start = node.env.now
            yield from sock.send(bytes(TOTAL))
            metrics["send_us"] = (node.env.now - start) / 1000

        def client(node):
            sock = yield from stacks[1].connect(0)
            dest = Buffer(TOTAL, name="file")
            start = node.env.now
            yield from sock.recv_into(dest, 0, TOTAL)
            elapsed = (node.env.now - start) / 1e9
            metrics["bw_mbs"] = TOTAL / elapsed / 1e6
            metrics["residual_buffered"] = sock.rx_bytes

        cluster.run([server, client])
        return cluster, metrics

    cluster, metrics = run_once(benchmark, exercise)
    show(headline_table("Sockets-FM — 64 KB stream with receive posting", [
        HeadlineRow("stream bandwidth", "-", f"{metrics['bw_mbs']:.1f} MB/s"),
        HeadlineRow("socket-buffered residual", "0 B",
                    f"{metrics['residual_buffered']} B"),
    ]))

    # A stream API over FM 2.x keeps a large fraction of FM's bandwidth.
    assert metrics["bw_mbs"] > 35
    # Receive posting: nothing accumulated in socket buffers.
    assert metrics["residual_buffered"] == 0
