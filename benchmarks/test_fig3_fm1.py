"""Figure 3: FM 1.x on the Sparc/SBus/Myrinet testbed.

(a) overhead breakdown — bandwidth with (1) link management only,
    (2) + I/O bus crossing, (3) + flow control (= full FM 1.x);
(b) overall FM 1.x performance — the paper's headline: 17.6 MB/s peak,
    14 µs latency, N-half = 54 bytes.
"""

import pytest

from conftest import run_once
from repro.bench.breakdown import breakdown_sweep
from repro.bench.microbench import fm_pingpong_latency_us
from repro.bench.nhalf import n_half
from repro.bench.report import HeadlineRow, curve_table, headline_table
from repro.bench.sweeps import FIG3_SIZES, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import SPARC_FM1


def test_fig3a_overhead_breakdown(benchmark, show):
    def regenerate():
        return breakdown_sweep(SPARC_FM1, FIG3_SIZES, n_messages=40)

    link, bus, flow = run_once(benchmark, regenerate)
    show(curve_table("Figure 3(a) — FM 1.x overhead breakdown",
                     [link, bus, flow]))

    # Shape claims: the bus crossing costs most of the link bandwidth
    # (paper: ~60 -> ~20 MB/s at 512 B); flow control, properly designed,
    # costs little on top (§3.1: "these guarantees need not be costly").
    assert link.at(512) > 3 * bus.at(512)
    assert flow.at(512) > 0.85 * bus.at(512)
    # Each curve rises with message size.
    for sweep in (link, bus, flow):
        assert sweep.bandwidths_mbs == sorted(sweep.bandwidths_mbs)


def test_fig3b_fm1_overall(benchmark, show):
    def regenerate():
        sweep = bandwidth_sweep(SPARC_FM1, 1, FIG3_SIZES, n_messages=40,
                                label="FM 1.x")
        latency = fm_pingpong_latency_us(Cluster(2, SPARC_FM1, 1), 16,
                                         iterations=15)
        return sweep, latency

    sweep, latency = run_once(benchmark, regenerate)
    measured_nhalf = n_half(sweep.sizes, sweep.bandwidths_mbs)
    show(curve_table("Figure 3(b) — FM 1.x overall performance", [sweep]))
    show(headline_table("FM 1.x headline metrics", [
        HeadlineRow("one-way latency (16 B)", "14 us", f"{latency:.1f} us"),
        HeadlineRow("peak bandwidth", "17.6 MB/s",
                    f"{sweep.peak_mbs:.1f} MB/s"),
        HeadlineRow("N-half", "54 B", f"{measured_nhalf:.0f} B"),
    ]))

    assert latency == pytest.approx(14.0, rel=0.15)
    assert sweep.peak_mbs == pytest.approx(17.6, rel=0.15)
    assert measured_nhalf == pytest.approx(54, rel=0.30)
