"""Figure 5: FM 2.1 performance on the 200 MHz Pentium Pro testbed.

Paper headlines reproduced: 11 µs minimum one-way latency, 77 MB/s peak
bandwidth, N-half < 256 bytes, and the "nearly fourfold" absolute
improvement over FM 1.x.
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_pingpong_latency_us
from repro.bench.nhalf import n_half
from repro.bench.report import HeadlineRow, curve_table, headline_table
from repro.bench.sweeps import FIG456_SIZES, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1


def test_fig5_fm2_performance(benchmark, show):
    def regenerate():
        sweep = bandwidth_sweep(PPRO_FM2, 2, FIG456_SIZES, n_messages=40,
                                label="FM 2.1")
        latency = fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2), 16,
                                         iterations=15)
        fm1_peak = bandwidth_sweep(SPARC_FM1, 1, (256, 512), n_messages=40,
                                   label="FM 1.x").peak_mbs
        return sweep, latency, fm1_peak

    sweep, latency, fm1_peak = run_once(benchmark, regenerate)
    measured_nhalf = n_half(sweep.sizes, sweep.bandwidths_mbs)
    show(curve_table("Figure 5 — FM 2.1 on a 200 MHz PPro", [sweep]))
    show(headline_table("FM 2.x headline metrics", [
        HeadlineRow("one-way latency (16 B)", "11 us", f"{latency:.1f} us"),
        HeadlineRow("peak bandwidth", "77 MB/s", f"{sweep.peak_mbs:.1f} MB/s"),
        HeadlineRow("N-half", "< 256 B", f"{measured_nhalf:.0f} B"),
        HeadlineRow("speedup over FM 1.x", "~4x",
                    f"{sweep.peak_mbs / fm1_peak:.1f}x"),
    ]))

    assert latency == pytest.approx(11.0, rel=0.15)
    assert sweep.peak_mbs == pytest.approx(77.0, rel=0.15)
    assert measured_nhalf < 256
    # §1: "nearly fourfold increase of absolute performance".
    assert 3.5 <= sweep.peak_mbs / fm1_peak <= 5.0
    # Rapid growth of the bandwidth curve (§4.2): half power well before
    # one packet, then a steady climb to the peak at 2 KB.
    assert sweep.bandwidths_mbs == sorted(sweep.bandwidths_mbs)
