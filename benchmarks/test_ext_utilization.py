"""Extension — where the time goes: component utilisation during streams.

Quantifies the paper's saturation arguments: FM 1.x is I/O-bus/PIO-bound
on the Sparc (the CPU is busy *because* PIO occupies it), FM 2.x is
send-side bound on the PPro, and layering MPI on FM 1.x shifts the load
onto host memcpy (the copies), while MPI on FM 2.x leaves the profile
nearly identical to raw FM.
"""

import pytest

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.bench.utilization import fm_stream_utilization, mpi_stream_utilization
from repro.configs import PPRO_FM2, SPARC_FM1


def test_ext_component_utilization(benchmark, show):
    def regenerate():
        return {
            "FM 1.x @512B": fm_stream_utilization(SPARC_FM1, 1, 512),
            "FM 2.x @2KB": fm_stream_utilization(PPRO_FM2, 2, 2048),
            "MPI-FM 1.x @512B": mpi_stream_utilization(SPARC_FM1, 1, 512),
            "MPI-FM 2.x @2KB": mpi_stream_utilization(PPRO_FM2, 2, 2048),
        }

    results = run_once(benchmark, regenerate)
    rows = []
    for label, util in results.items():
        for metric, value in util.rows():
            rows.append(HeadlineRow(f"{label}: {metric}", "-", value))
    show(headline_table("Extension — component utilisation", rows))

    fm1 = results["FM 1.x @512B"]
    fm2 = results["FM 2.x @2KB"]
    mpi1 = results["MPI-FM 1.x @512B"]
    mpi2 = results["MPI-FM 2.x @2KB"]

    # Raw FM saturates the send side (PIO holds CPU + bus).
    assert fm1.sender_cpu > 0.9
    assert fm1.sender_bus > 0.7
    assert fm2.bottleneck == "sender_cpu"
    # Zero copies on any FM-only send path.
    assert fm1.sender_copy_bytes == 0
    assert fm2.sender_copy_bytes == 0
    # MPI over FM 1.x turns the receiver CPU into a copy engine: ~4 copies
    # per received payload byte vs ~1 for MPI over FM 2.x.
    mpi1_per_byte = mpi1.receiver_copy_bytes / (512 * 40)
    mpi2_per_byte = mpi2.receiver_copy_bytes / (2048 * 40)
    assert mpi1_per_byte > 3.0
    assert mpi2_per_byte < 1.2
    assert mpi1_per_byte > 2.5 * mpi2_per_byte
    # MPI over FM 2.x keeps raw FM's profile: sender-side bound, receiver
    # CPU comfortably below saturation.
    assert mpi2.bottleneck == "sender_cpu"
    assert mpi2.receiver_cpu < 0.95
