"""Extension — resilience sweep under planned fault episodes.

The §3.1 layering argument stress-tested with the :mod:`repro.faults`
framework instead of static link parameters: scheduled bit-error and
lossy-link episodes drive two sweeps on the same substrate:

* **software go-back-N** — goodput, per-message latency, and the
  bytes-wasted fraction as the BER and the drop rate rise; the protocol
  keeps delivering, paying a measurable and growing recovery tax;
* **FM 2.x** — no recovery by design: the interesting number is how
  *quickly* it fails loudly, measured as the gap between the first
  injected corruption (from the injector's fault trace) and the
  :class:`~repro.core.common.FmTransportError` the extract path raises.

Fault events ride through ``repro.obs`` as ``fault`` spans, so every run
here is also visible in trace exports.
"""

import statistics

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmTransportError
from repro.ext import SwReliablePair
from repro.faults import FaultPlan, LinkFault

MSG_BYTES = 1500
N_MESSAGES = 25


def swrel_under_plan(plan):
    """Reliable transfer under a fault plan; goodput, latency, accounting."""
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    observer = cluster.observe()
    injector = cluster.inject_faults(plan)
    pair = SwReliablePair(cluster, 0, 1)
    payloads = [bytes(MSG_BYTES) for _ in range(N_MESSAGES)]
    got = []
    sender_done = [False]
    latencies = []
    marks = {}

    def sender(node):
        marks["start"] = node.env.now
        for payload in payloads:
            t0 = node.env.now
            yield from pair.send_message(payload)
            latencies.append(node.env.now - t0)   # send -> fully ACKed
        sender_done[0] = True

    def receiver(node):
        while (len(got) < N_MESSAGES or not sender_done[0]
               or pair.outstanding):
            messages = yield from pair.deliver()
            got.extend(messages)
            if messages:
                marks["end"] = node.env.now
            else:
                yield node.env.timeout(300)

    cluster.run([sender, receiver])
    assert len(got) == N_MESSAGES
    elapsed = marks["end"] - marks["start"]
    goodput = MSG_BYTES * N_MESSAGES / (elapsed / 1e9) / 1e6
    return {
        "goodput_mbs": goodput,
        "mean_latency_ns": statistics.mean(latencies),
        "stats": pair.stats(),
        "fault_events": len(injector.events),
        "fault_spans": sum(1 for s in observer.spans if s.layer == "fault"),
    }


def fm_detection_latency_ns(ber, seed):
    """Time from the first injected corruption to FM's loud failure."""
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    injector = cluster.inject_faults(FaultPlan(seed=seed, episodes=(
        LinkFault(link="link:h0->*", ber=ber),)))

    def handler(fm, stream, src):
        yield from stream.receive_bytes(stream.msg_bytes)

    hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

    def sender(node):
        buf = node.buffer(MSG_BYTES)
        for _ in range(400):
            yield from node.fm.send_buffer(1, hid, buf, MSG_BYTES)

    def receiver(node):
        while True:
            got = yield from node.fm.extract()
            if not got:
                yield node.env.timeout(300)

    try:
        cluster.run([sender, receiver], until_ns=10_000_000_000)
    except FmTransportError as err:
        corruptions = [t for t, kind, _c, _d in injector.events
                       if kind == "corrupt"]
        return err.time_ns - corruptions[0]
    raise AssertionError(f"no corruption materialised at BER {ber:g}")


def test_ext_resilience_sweep(benchmark, show):
    def regenerate():
        bers = {ber: swrel_under_plan(FaultPlan(seed=20, episodes=(
            LinkFault(link="*", ber=ber),))) for ber in (2e-5, 1e-4)}
        drops = {rate: swrel_under_plan(FaultPlan(seed=21, episodes=(
            LinkFault(link="*", drop_rate=rate),)))
            for rate in (0.02, 0.08)}
        clean = swrel_under_plan(FaultPlan(seed=22))
        detection = {ber: fm_detection_latency_ns(ber, seed=23)
                     for ber in (5e-5, 2e-4)}
        return clean, bers, drops, detection

    clean, bers, drops, detection = run_once(benchmark, regenerate)
    rows = [HeadlineRow(
        "go-back-N, clean", f"{clean['mean_latency_ns'] / 1e3:.0f} us",
        f"{clean['goodput_mbs']:.1f} MB/s", "baseline")]
    for label, sweep in (("BER", bers), ("drop", drops)):
        for level, r in sweep.items():
            rows.append(HeadlineRow(
                f"go-back-N, {label} {level:g}",
                f"{r['mean_latency_ns'] / 1e3:.0f} us",
                f"{r['goodput_mbs']:.1f} MB/s",
                f"{r['stats']['wasted_fraction'] * 100:.1f}% bytes wasted"))
    for ber, latency in detection.items():
        rows.append(HeadlineRow(
            f"FM 2.x, BER {ber:g}", f"{latency / 1e3:.0f} us", "-",
            "fails loud: corruption -> FmTransportError"))
    show(headline_table(
        "Extension — resilience under planned fault episodes", rows))

    # Goodput degrades monotonically with the BER but never dies; the
    # recovery tax (wasted bytes) grows with it.
    assert clean["goodput_mbs"] > bers[2e-5]["goodput_mbs"] > \
        bers[1e-4]["goodput_mbs"] > 0
    assert clean["stats"]["wasted_fraction"] == 0.0
    assert bers[2e-5]["stats"]["wasted_fraction"] < \
        bers[1e-4]["stats"]["wasted_fraction"]
    # Same shape for outright loss; latency rises with the drop rate.
    assert clean["goodput_mbs"] > drops[0.02]["goodput_mbs"] > \
        drops[0.08]["goodput_mbs"] > 0
    assert drops[0.08]["mean_latency_ns"] > clean["mean_latency_ns"]
    # Every lossy run surfaced its episodes through the observability layer.
    for r in list(bers.values()) + list(drops.values()):
        assert r["fault_events"] > 0
        assert r["fault_spans"] >= r["fault_events"]
    assert clean["fault_events"] == 0
    # FM detects corruption promptly — within the extract polling cadence,
    # i.e. well under a millisecond of simulated time after the first hit.
    for latency in detection.values():
        assert 0 < latency < 1_000_000
