"""Shared helpers for the figure/table regeneration benchmarks.

Every module here regenerates one table or figure of the paper: it runs the
simulated experiment under pytest-benchmark (so the harness also reports the
wall-clock cost of the simulation itself), prints the regenerated rows, and
asserts the *shape* claims — who wins, by what factor, where the crossovers
sit — against the paper (absolute tolerances in DESIGN.md §4).
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Mark everything in this directory ``benchmark`` unless it is ``fast``.

    This is the tier split: ``pytest -m "not benchmark"`` runs only the quick
    tier-1 tests (including the ``fast``-marked smoke files collected from
    here), while a plain ``pytest benchmarks`` still regenerates every figure.
    """
    for item in items:
        if item.get_closest_marker("fast") is None:
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture
def show(capsys):
    """Print a regenerated table to the real terminal, bypassing capture."""
    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
    return emit


def run_once(benchmark, fn):
    """Run a simulation experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
