"""Extension — single-message latency attribution, stage by stage.

The paper reports latency as one number (14 µs FM 1.x, 11 µs FM 2.x); the
waypoint-instrumented substrate lets us decompose it: API + PIO, NIC
firmware, wire and switch, receive DMA, extract + handler.  Both
generations are send-side dominated, with the receive DMA second —
consistent with the paper's overhead discussions.
"""

import pytest

from conftest import run_once
from repro.bench.journey import packet_journey
from repro.configs import PPRO_FM2, SPARC_FM1


def test_ext_latency_attribution(benchmark, show):
    def regenerate():
        return {
            "FM 1.x": packet_journey(SPARC_FM1, 1),
            "FM 2.x": packet_journey(PPRO_FM2, 2),
        }

    journeys = run_once(benchmark, regenerate)
    for label, journey in journeys.items():
        show(f"{label} — 16 B one-way journey\n{journey.render()}")

    fm1, fm2 = journeys["FM 1.x"], journeys["FM 2.x"]
    # Totals agree with the headline latencies (one-way, single message;
    # slightly below the ping-pong average which includes poll discovery).
    assert fm1.total_ns / 1000 == pytest.approx(13.2, rel=0.15)
    assert fm2.total_ns / 1000 == pytest.approx(10.1, rel=0.15)
    # Both generations are send-side (API + PIO) dominated...
    assert fm1.longest_stage().startswith("api_enter")
    assert fm2.longest_stage().startswith("api_enter")
    # ...and the wire + switch account for under 15% of the total.  A stage
    # is attributed to the component its *ending* mark names.
    for journey in journeys.values():
        network = sum(
            duration for name, duration in journey.stages()
            if name.split(" -> ")[1].endswith((".wire", ".forward"))
        )
        assert network < 0.15 * journey.total_ns
