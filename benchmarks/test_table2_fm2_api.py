"""Table 2: the FM 2.x API — conformance plus per-primitive cost table.

Exercises all five primitives of the paper's Table 2 (begin / send_piece /
end on the sender; receive inside a handler; extract with a byte budget)
through the simulated stack, including the §4.1 worked example: a handler
that reads a header piece, inspects it, then steers the payload.
"""

import struct

import pytest

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2


def test_table2_fm2_primitives(benchmark, show):
    def exercise():
        cluster = Cluster(2, PPRO_FM2, 2)
        delivered = []
        costs = {}

        # The paper's §4.1 example handler: receive the header, decide,
        # then receive the payload into the chosen destination.
        def handler(fm, stream, src):
            header = yield from stream.receive_bytes(8)
            length, little = struct.unpack("<ii", header)
            dest = fm._example_small if little else fm._example_big
            yield from stream.receive(dest, 0, length)
            delivered.append((little, dest.read(0, length)))

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            payload = bytes(range(200))
            buf = node.buffer(8 + 200)
            buf.write(struct.pack("<ii", 200, 0))
            buf.write(payload, 8)
            start = node.cpu.busy_ns
            stream = yield from node.fm.begin_message(1, 208, hid)
            costs["FM_begin_message"] = node.cpu.busy_ns - start
            start = node.cpu.busy_ns
            yield from node.fm.send_piece(stream, buf, 0, 8)
            costs["FM_send_piece (8 B)"] = node.cpu.busy_ns - start
            start = node.cpu.busy_ns
            yield from node.fm.send_piece(stream, buf, 8, 200)
            costs["FM_send_piece (200 B)"] = node.cpu.busy_ns - start
            start = node.cpu.busy_ns
            yield from node.fm.end_message(stream)
            costs["FM_end_message"] = node.cpu.busy_ns - start

        def receiver(node):
            node.fm._example_small = node.buffer(64, name="littlebuf")
            node.fm._example_big = node.buffer(4096, name="bigbuf")
            start = node.cpu.busy_ns
            while not delivered:
                got = yield from node.fm.extract(max_bytes=4096)
                if not got:
                    yield node.env.timeout(500)
            costs["FM_extract+FM_receive"] = node.cpu.busy_ns - start

        cluster.run([sender, receiver])
        return cluster, delivered, costs

    cluster, delivered, costs = run_once(benchmark, exercise)
    show(headline_table("Table 2 — FM 2.x primitives (simulated host-CPU cost)", [
        HeadlineRow(name, "-", f"{cost / 1000:.2f} us")
        for name, cost in costs.items()
    ]))

    fm = cluster.node(0).fm
    for primitive in ("begin_message", "send_piece", "end_message", "extract"):
        assert callable(getattr(fm, primitive))
    assert not hasattr(fm, "send_4")              # 1.x only
    little, payload = delivered[0]
    assert little == 0
    assert payload == bytes(range(200))
    # Piece cost scales with bytes moved (PIO), with a small fixed part.
    assert costs["FM_send_piece (200 B)"] > costs["FM_send_piece (8 B)"]
