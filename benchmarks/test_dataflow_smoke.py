"""Dataflow smoke test — wired into tier-1 via pyproject testpaths.

Exercises the pipeline scenario CLI end to end on both dataflow presets:
each run emits the full pipeline report schema (conservation, per-stage
telemetry, per-edge rows), reruns are byte-identical, the observer
changes nothing, the stall preset composes its built-in fault plan, and
``--list-presets`` describes every registered preset.  Fast by
construction, so it runs with the regular test suite rather than the
benchmark tier.
"""

from __future__ import annotations

import json

import pytest

from repro.workloads.run import main
from repro.workloads.runner import PRESET_DESCRIPTIONS, PRESETS

pytestmark = pytest.mark.fast

DATAFLOW_PRESETS = ("dataflow-rollup", "dataflow-scatter-gather")


def run_cli(args, capsys):
    assert main(args) == 0
    return capsys.readouterr().out


class TestDataflowSmoke:
    @pytest.mark.parametrize("preset", DATAFLOW_PRESETS)
    def test_cli_emits_a_complete_pipeline_report(self, preset, capsys):
        report = json.loads(run_cli([preset], capsys))
        results = report["results"]
        conservation = results["conservation"]
        assert conservation["ok"]
        assert conservation["sources_emitted"] == (
            conservation["sink_source_records"] + conservation["filtered"])
        assert results["records"]["dropped"] == 0
        assert results["latency"]["p50_ns"] > 0
        assert results["throughput_rps"] > 0
        assert results["stages"] and results["edges"]
        assert report["scenario"]["name"] == preset
        assert report["scenario"]["pipeline"] in ("rollup",
                                                  "scatter_gather")

    @pytest.mark.parametrize("preset", DATAFLOW_PRESETS)
    def test_rerun_is_byte_identical(self, preset, capsys):
        assert run_cli([preset], capsys) == run_cli([preset], capsys)

    def test_observer_does_not_perturb_the_report(self, capsys):
        plain = run_cli(["dataflow-rollup"], capsys)
        observed = run_cli(["dataflow-rollup", "--observe"], capsys)
        assert plain == observed

    def test_stall_preset_composes_its_built_in_fault_plan(self, capsys):
        faulted = json.loads(run_cli(["dataflow-rollup-stall"], capsys))
        clean = json.loads(run_cli(["dataflow-rollup-stall", "--no-fault"],
                                   capsys))
        assert faulted["results"]["credit_stalls"] > 0
        assert clean["results"]["credit_stalls"] == 0
        assert faulted["results"]["conservation"]["ok"]

    def test_non_pipeline_reports_keep_their_schema(self, capsys):
        # Pipeline-only Scenario fields stay out of rpc reports, so the
        # new kind cannot ripple into previously pinned report bytes.
        report = json.loads(run_cli(["rpc-open"], capsys))
        assert "pipeline" not in report["scenario"]
        assert "stage_placement" not in report["scenario"]


class TestListPresets:
    def test_every_preset_is_listed_with_a_description(self, capsys):
        out = run_cli(["--list-presets"], capsys)
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(PRESETS)
        for line in lines:
            name, _, description = line.partition("  ")
            assert name.strip() in PRESETS
            assert description.strip()

    def test_descriptions_registry_covers_exactly_the_presets(self):
        assert set(PRESET_DESCRIPTIONS) == set(PRESETS)
        for name, description in PRESET_DESCRIPTIONS.items():
            assert description and "\n" not in description, name
