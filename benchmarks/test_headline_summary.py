"""The reproduction scorecard: every headline number of the paper in one
table, paper vs measured (the machine-readable version of EXPERIMENTS.md).
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_pingpong_latency_us, fm_stream_bandwidth_mbs
from repro.bench.mpibench import mpi_pingpong_latency_us, mpi_stream_bandwidth_mbs
from repro.bench.nhalf import n_half
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1

SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)


def test_headline_summary(benchmark, show):
    def regenerate():
        fm1_curve = [fm_stream_bandwidth_mbs(Cluster(2, SPARC_FM1, 1), s, 40)
                     for s in SIZES]
        fm2_curve = [fm_stream_bandwidth_mbs(Cluster(2, PPRO_FM2, 2), s, 40)
                     for s in SIZES]
        mpi2_curve = [mpi_stream_bandwidth_mbs(Cluster(2, PPRO_FM2, 2), s, 30)
                      for s in SIZES]
        return {
            "fm1_latency": fm_pingpong_latency_us(Cluster(2, SPARC_FM1, 1),
                                                  16, iterations=15),
            "fm2_latency": fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2),
                                                  16, iterations=15),
            "mpi2_latency": mpi_pingpong_latency_us(Cluster(2, PPRO_FM2, 2),
                                                    16, iterations=12),
            "fm1_peak": max(fm1_curve),
            "fm2_peak": max(fm2_curve),
            "mpi2_peak": max(mpi2_curve),
            "fm1_nhalf": n_half(list(SIZES[:6]), fm1_curve[:6]),
            "fm2_nhalf": n_half(list(SIZES), fm2_curve),
            "eff16": mpi2_curve[0] / fm2_curve[0],
            "eff2048": mpi2_curve[-1] / fm2_curve[-1],
        }

    m = run_once(benchmark, regenerate)

    def pct(measured, paper):
        return f"{100 * (measured - paper) / paper:+.0f}%"

    show(headline_table("Reproduction scorecard — paper vs measured", [
        HeadlineRow("FM 1.x latency", "14 us", f"{m['fm1_latency']:.1f} us",
                    pct(m["fm1_latency"], 14)),
        HeadlineRow("FM 1.x peak BW", "17.6 MB/s", f"{m['fm1_peak']:.1f}",
                    pct(m["fm1_peak"], 17.6)),
        HeadlineRow("FM 1.x N-half", "54 B", f"{m['fm1_nhalf']:.0f} B",
                    pct(m["fm1_nhalf"], 54)),
        HeadlineRow("FM 2.x latency", "11 us", f"{m['fm2_latency']:.1f} us",
                    pct(m["fm2_latency"], 11)),
        HeadlineRow("FM 2.x peak BW", "77 MB/s", f"{m['fm2_peak']:.1f}",
                    pct(m["fm2_peak"], 77)),
        HeadlineRow("FM 2.x N-half", "< 256 B", f"{m['fm2_nhalf']:.0f} B"),
        HeadlineRow("MPI-FM 2.x latency", "17 us", f"{m['mpi2_latency']:.1f} us",
                    pct(m["mpi2_latency"], 17)),
        HeadlineRow("MPI-FM 2.x peak BW", "70 MB/s", f"{m['mpi2_peak']:.1f}",
                    pct(m["mpi2_peak"], 70)),
        HeadlineRow("MPI eff @ 16 B", "70%", f"{100 * m['eff16']:.0f}%"),
        HeadlineRow("MPI eff @ 2 KB", "~90%", f"{100 * m['eff2048']:.0f}%"),
    ]))

    assert m["fm1_latency"] == pytest.approx(14, rel=0.15)
    assert m["fm1_peak"] == pytest.approx(17.6, rel=0.15)
    assert m["fm1_nhalf"] == pytest.approx(54, rel=0.30)
    assert m["fm2_latency"] == pytest.approx(11, rel=0.15)
    assert m["fm2_peak"] == pytest.approx(77, rel=0.15)
    assert m["fm2_nhalf"] < 256
    assert m["mpi2_peak"] == pytest.approx(70, rel=0.15)
    assert 0.62 <= m["eff16"] <= 0.80
    assert m["eff2048"] >= 0.85
