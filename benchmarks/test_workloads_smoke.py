"""Workloads smoke test — wired into tier-1 via pyproject testpaths.

Exercises the scenario CLI end to end on four preset specs (open-loop
RPC, closed-loop RPC, MPI allreduce, and a 4-shard RPC service): each run
emits a JSON report with the full latency/throughput/drop schema —
per-shard sections and the imbalance ratio for the sharded preset —
reruns are byte-identical, and attaching the observer changes nothing.
Fast by construction, so it runs with the regular test suite rather than
the benchmark tier.
"""

from __future__ import annotations

import json

import pytest

from repro.workloads.run import main

pytestmark = pytest.mark.fast

SMOKE_PRESETS = ("rpc-open", "rpc-closed", "mpi-allreduce", "rpc-sharded")


def run_cli(args, capsys):
    assert main(args) == 0
    return capsys.readouterr().out


class TestWorkloadsSmoke:
    @pytest.mark.parametrize("preset", SMOKE_PRESETS)
    def test_cli_emits_a_complete_report(self, preset, capsys):
        report = json.loads(run_cli([preset], capsys))
        results = report["results"]
        for key in ("p50_ns", "p95_ns", "p99_ns"):
            assert isinstance(results["latency"][key], int)
        assert results["throughput_rps"] > 0
        assert set(results["drops"]) == {"shed", "expired", "abandoned",
                                         "total"}
        assert results["completed"] > 0
        assert report["scenario"]["name"] == preset

    def test_rerun_is_byte_identical(self, capsys):
        first = run_cli(["rpc-open"], capsys)
        second = run_cli(["rpc-open"], capsys)
        assert first == second

    def test_observer_does_not_perturb_the_report(self, capsys):
        plain = run_cli(["rpc-closed"], capsys)
        observed = run_cli(["rpc-closed", "--observe"], capsys)
        assert plain == observed

    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps({
            "name": "custom", "kind": "rpc", "n_nodes": 2,
            "arrival": "closed", "n_requests": 10,
        }))
        out = tmp_path / "report.json"
        run_cli(["--spec", str(spec), "-o", str(out)], capsys)
        report = json.loads(out.read_text())
        assert report["scenario"]["name"] == "custom"
        assert report["results"]["completed"] == 10

    def test_sharded_preset_reports_per_shard_sections(self, capsys):
        report = json.loads(run_cli(["rpc-sharded"], capsys))
        results = report["results"]
        shards = results["shards"]
        assert len(shards) == report["scenario"]["servers"] == 4
        assert sum(s["completed"] for s in shards) == results["completed"]
        assert results["imbalance"] >= 1.0
        # Every shard carries the full flat schema, not a summary.
        for shard in shards:
            assert set(shard["drops"]) == {"shed", "expired", "abandoned",
                                           "total"}
            assert "p99_ns" in shard["latency"]
        # Byte-identical rerun: the sharded path keeps the contract.
        assert run_cli(["rpc-sharded"], capsys) == run_cli(
            ["rpc-sharded"], capsys)

    def test_list_and_bad_preset(self, capsys):
        listing = run_cli(["list"], capsys)
        for preset in SMOKE_PRESETS:
            assert preset in listing
        with pytest.raises(SystemExit):
            main(["no-such-preset"])
