"""Extension — one-sided RDMA and NIC-offloaded collectives.

The paper's firmware thesis (§5: "the interface between the network
interface firmware and the host is the critical design point") extended
one step further: let the firmware *match and steer* (one-sided put/get
against registered regions) and *run protocol rounds* (barrier
dissemination, broadcast trees) without the host on the data path.

* **put bandwidth** — streaming one-sided puts vs the FM 2.x two-sided
  stream on the same simulated PPro testbed.  The put wins at every size:
  no handler dispatch, no extract loop, no credit accounting on the
  receive side, and the payload rides the DMA engine instead of PIO.  The
  short-message metric moves too: N-half drops below the FM 2.x stream's,
  and the two-sided curve *collapses* at 64 KB (credit-ledger round trips)
  where the put curve stays at peak.
* **collective scaling** — host-level MPI barrier/broadcast pay the full
  per-message software stack every protocol round; the NIC engines pay
  ``collective_step_ns`` and wire hops.  Both scale with log2(n) rounds,
  but the NIC's per-round cost is a small fraction of the host's, so its
  latency-vs-cluster-size curve is measurably flatter.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.rdma_bench import (
    host_barrier_latency_ns,
    host_bcast_latency_ns,
    nic_barrier_latency_ns,
    nic_bcast_latency_ns,
    rdma_bandwidth_sweep,
)
from repro.bench.report import HeadlineRow, curve_table, headline_table
from repro.bench.sweeps import bandwidth_sweep
from repro.configs import PPRO_FM2

SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536)
GROUP_SIZES = (2, 4, 8, 16)
BCAST_BYTES = 4096


def test_ext_rdma_put_bandwidth(benchmark, show):
    def regenerate():
        rdma = rdma_bandwidth_sweep(PPRO_FM2, SIZES, n_messages=40)
        fm2 = bandwidth_sweep(PPRO_FM2, 2, SIZES, n_messages=40,
                              label="FM 2.x stream")
        return rdma, fm2

    rdma, fm2 = run_once(benchmark, regenerate)
    show(curve_table("Extension — one-sided put vs FM 2.x stream",
                     [rdma, fm2]))
    show(headline_table("RDMA put headline metrics", [
        HeadlineRow("peak bandwidth", "> FM 2.x",
                    f"{rdma.peak_mbs:.1f} vs {fm2.peak_mbs:.1f} MB/s"),
        HeadlineRow("N-half", "< FM 2.x",
                    f"{rdma.n_half_bytes:.0f} vs {fm2.n_half_bytes:.0f} B"),
        HeadlineRow("64 KB bandwidth", "no credit collapse",
                    f"{rdma.at(65536):.1f} vs {fm2.at(65536):.1f} MB/s"),
    ]))

    # One-sided wins at *every* size: less host work per message at the
    # small end, DMA-not-PIO payload movement at the large end.
    for size in SIZES:
        assert rdma.at(size) > fm2.at(size), f"FM2 beat RDMA at {size} B"
    assert rdma.peak_mbs > 1.1 * fm2.peak_mbs
    # The short-message half-power point moves down, not just the peak.
    assert rdma.n_half_bytes < fm2.n_half_bytes
    # The two-sided stream collapses at 64 KB (credit round trips mid
    # message); the one-sided stream holds peak — registration already
    # promised the landing memory, so no ledger is consulted.
    assert fm2.at(65536) < 0.8 * fm2.peak_mbs
    assert rdma.at(65536) > 0.95 * rdma.peak_mbs
    # Simulation determinism: regenerating a point reproduces it exactly.
    assert rdma_bandwidth_sweep(PPRO_FM2, (4096,),
                                n_messages=40).at(4096) == rdma.at(4096)


def test_ext_rdma_collective_scaling(benchmark, show):
    def regenerate():
        return {
            n: {
                "nic_barrier": nic_barrier_latency_ns(PPRO_FM2, n),
                "host_barrier": host_barrier_latency_ns(PPRO_FM2, n),
                "nic_bcast": nic_bcast_latency_ns(PPRO_FM2, n, BCAST_BYTES),
                "host_bcast": host_bcast_latency_ns(PPRO_FM2, n,
                                                    BCAST_BYTES),
            }
            for n in GROUP_SIZES
        }

    results = run_once(benchmark, regenerate)
    show(headline_table(
        "Extension — collective latency, host stack vs NIC firmware", [
            HeadlineRow(
                f"barrier n={n:>2}",
                f"host {r['host_barrier'] / 1e3:.1f} us",
                f"nic {r['nic_barrier'] / 1e3:.1f} us")
            for n, r in results.items()
        ] + [
            HeadlineRow(
                f"bcast 4 KB n={n:>2}",
                f"host {r['host_bcast'] / 1e3:.1f} us",
                f"nic {r['nic_bcast'] / 1e3:.1f} us")
            for n, r in results.items()
        ]))

    for n, r in results.items():
        assert r["nic_barrier"] < r["host_barrier"], f"barrier n={n}"
        assert r["nic_bcast"] < r["host_bcast"], f"bcast n={n}"
    # Both barriers run log2(n) dissemination rounds; the NIC's growth
    # from 2 to 16 nodes is well under half the host's because each
    # firmware round costs collective_step_ns + a hop, not a full
    # per-message software crossing at both ends.
    nic_growth = results[16]["nic_barrier"] - results[2]["nic_barrier"]
    host_growth = results[16]["host_barrier"] - results[2]["host_barrier"]
    assert nic_growth < 0.5 * host_growth
    # Same story for the broadcast trees.
    bcast_nic_growth = results[16]["nic_bcast"] - results[2]["nic_bcast"]
    bcast_host_growth = results[16]["host_bcast"] - results[2]["host_bcast"]
    assert bcast_nic_growth < 0.5 * bcast_host_growth
    # Simulation determinism: a regenerated point reproduces exactly.
    assert nic_barrier_latency_ns(PPRO_FM2, 8) == results[8]["nic_barrier"]
