"""§4.2's generality claim: "we have implemented other APIs, including
Shmem Put/Get and Global Arrays (both global address space interfaces)".

Regenerates put/get round-trip microbenchmarks over Shmem-FM and a
distributed Global Arrays patch workload, and checks the zero-staging
property that FM 2.x's scatter gives one-sided puts.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.simkernel.units import ns_to_us
from repro.upper.ga import GlobalArray
from repro.upper.shmem import Shmem


def test_text_shmem_putget_and_ga(benchmark, show):
    def exercise():
        cluster = Cluster(2, PPRO_FM2, 2)
        shmems = [Shmem(node, 2) for node in cluster.nodes]
        for sh in shmems:
            sh.register_region(1, 64 * 1024)
        arrays = [GlobalArray(sh, 2, rows=8, cols=8) for sh in shmems]
        metrics = {}

        def pe0(node):
            # put latency and bandwidth
            start = node.env.now
            yield from shmems[0].put(1, 1, 0, bytes(16))
            yield from shmems[0].fence()
            metrics["put16_rt_us"] = ns_to_us(node.env.now - start)
            start = node.env.now
            yield from shmems[0].put(1, 1, 0, bytes(32 * 1024))
            yield from shmems[0].fence()
            elapsed = (node.env.now - start) / 1e9
            metrics["put_bw_mbs"] = 32 * 1024 / elapsed / 1e6
            # get round trip
            start = node.env.now
            data = yield from shmems[0].get(1, 1, 0, 16)
            metrics["get16_rt_us"] = ns_to_us(node.env.now - start)
            # Global Arrays patch workload
            arrays[0].local_view()[:] = 1.0
            yield from shmems[0].barrier()
            yield from arrays[0].acc(4, np.full((2, 8), 0.5))  # PE1's rows
            yield from arrays[0].sync()
            patch = yield from arrays[0].get(0, 8)
            metrics["ga_patch_sum"] = float(patch.sum())
            yield from shmems[0].barrier()

        def pe1(node):
            arrays[1].local_view()[:] = 2.0
            yield from shmems[1].barrier()
            yield from arrays[1].sync()
            yield from shmems[1].barrier()

        cluster.run([pe0, pe1])
        return cluster, metrics

    cluster, metrics = run_once(benchmark, exercise)
    show(headline_table("§4.2 — Shmem Put/Get + Global Arrays over FM 2.x", [
        HeadlineRow("put 16 B + fence round trip", "-",
                    f"{metrics['put16_rt_us']:.1f} us"),
        HeadlineRow("get 16 B round trip", "-",
                    f"{metrics['get16_rt_us']:.1f} us"),
        HeadlineRow("put bandwidth (32 KB)", "-",
                    f"{metrics['put_bw_mbs']:.1f} MB/s"),
        HeadlineRow("GA patch checksum", "56.0",
                    f"{metrics['ga_patch_sum']:.1f}"),
    ]))

    # A put+ack round trip is a few tens of microseconds at this scale.
    assert 10 < metrics["put16_rt_us"] < 80
    assert 10 < metrics["get16_rt_us"] < 80
    # Large puts stream at a substantial fraction of FM bandwidth.
    assert metrics["put_bw_mbs"] > 30
    # 4 rows of 1.0 + 2 rows of (2.0 + 0.5) + 2 rows of 2.0, 8 cols each.
    assert metrics["ga_patch_sum"] == pytest.approx(
        4 * 8 * 1.0 + 2 * 8 * 2.5 + 2 * 8 * 2.0)
    # Zero staging on the target: the only copy labels on PE1 are FM 2.x
    # deliveries straight into the symmetric region.
    labels = set(cluster.node(1).cpu.meter.labels())
    assert labels <= {"fm2.deliver"}
