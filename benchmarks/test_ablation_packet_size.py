"""Ablation — the FM packet size, the design constant both generations pin.

FM 1.x used small fixed packets (128 B payload); FM 2.x packets carry up to
1 KB.  This sweep varies the FM 2.x packet payload and regenerates the
bandwidth curve: small packets tax large messages with per-packet costs
(more header PIO, more firmware and DMA startups), huge packets buy little
once per-packet costs amortise — the knee justifies the shipped constant.
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_stream
from repro.bench.report import curve_table
from repro.bench.sweeps import SweepResult
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmParams

PACKET_SIZES = (128, 256, 1024, 4096)
MSG_SIZES = (64, 1024, 8192)


def measure(packet_payload: int, msg_bytes: int) -> float:
    params = FmParams(packet_payload=packet_payload, credits_per_peer=16,
                      credit_batch=8)
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2, fm_params=params)
    return fm_stream(cluster, msg_bytes, n_messages=30).bandwidth_mbs


def test_ablation_packet_size(benchmark, show):
    def regenerate():
        return {
            packet: [measure(packet, size) for size in MSG_SIZES]
            for packet in PACKET_SIZES
        }

    results = run_once(benchmark, regenerate)
    sweeps = [SweepResult(f"{packet} B packets", list(MSG_SIZES), values)
              for packet, values in results.items()]
    show(curve_table("Ablation — FM 2.x bandwidth vs packet payload size",
                     sweeps))

    at_8k = {packet: values[2] for packet, values in results.items()}
    at_64 = {packet: values[0] for packet, values in results.items()}
    # Small packets cripple large messages (per-packet costs dominate).
    assert at_8k[128] < 0.55 * at_8k[1024]
    # Going beyond 1 KB buys little: the knee is where FM 2.x ships.
    assert at_8k[4096] < 1.25 * at_8k[1024]
    # Packet size barely matters below one packet's worth of payload.
    values_64 = list(at_64.values())
    assert max(values_64) / min(values_64) < 1.3
