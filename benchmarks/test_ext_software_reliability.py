"""Extension — the cost of reliability in software (the §3.1 counterfactual).

FM gets reliable, in-order delivery almost for free by exploiting the
network's properties; CMAM's Figure 2 shows what the guarantees cost when
the network provides nothing.  Here the comparison runs on *our* substrate:
the software go-back-N protocol (source buffering, ACKs, timeouts) is
benchmarked against raw FM 2.x on a clean network — the overhead of the
machinery FM avoided — and across increasing bit error rates, where the
software protocol keeps delivering (at falling goodput) while FM, by
design, cannot operate at all.
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_stream_bandwidth_mbs
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.ext import SwReliablePair

MSG_BYTES = 1500
N_MESSAGES = 25


def swrel_stream(ber: float):
    machine = PPRO_FM2.with_link(bit_error_rate=ber) if ber else PPRO_FM2
    cluster = Cluster(2, machine=machine, fm_version=2)
    pair = SwReliablePair(cluster, 0, 1)
    payloads = [bytes(MSG_BYTES) for _ in range(N_MESSAGES)]
    got = []
    sender_done = [False]
    marks = {}

    def sender(node):
        marks["start"] = node.env.now
        for payload in payloads:
            yield from pair.send_message(payload)
        sender_done[0] = True

    def receiver(node):
        while (len(got) < N_MESSAGES or not sender_done[0]
               or pair.outstanding):
            messages = yield from pair.deliver()
            got.extend(messages)
            if messages:
                marks["end"] = node.env.now
            else:
                yield node.env.timeout(300)

    cluster.run([sender, receiver])
    assert len(got) == N_MESSAGES
    elapsed = marks["end"] - marks["start"]
    bandwidth = MSG_BYTES * N_MESSAGES / (elapsed / 1e9) / 1e6
    return bandwidth, pair


def test_ext_software_reliability(benchmark, show):
    def regenerate():
        fm_clean = fm_stream_bandwidth_mbs(Cluster(2, PPRO_FM2, 2),
                                           MSG_BYTES, n_messages=N_MESSAGES)
        results = {ber: swrel_stream(ber) for ber in (0.0, 2e-5, 1e-4)}
        return fm_clean, results

    fm_clean, results = run_once(benchmark, regenerate)
    rows = [HeadlineRow("FM 2.x, clean network", "-",
                        f"{fm_clean:.1f} MB/s", "no recovery")]
    for ber, (bandwidth, pair) in results.items():
        rows.append(HeadlineRow(
            f"software go-back-N, BER {ber:g}", "-", f"{bandwidth:.1f} MB/s",
            f"{pair.retransmissions} rexmit"))
    show(headline_table(
        "Extension — reliability in software vs FM's layered guarantees",
        rows))

    clean_sw, clean_pair = results[0.0]
    # On a clean network the software machinery (source copies, ACK
    # processing, window bookkeeping) costs a large bandwidth fraction —
    # the §2.3/§3.1 argument, reproduced on our own hardware model.
    assert clean_pair.retransmissions == 0
    assert clean_sw < 0.75 * fm_clean
    assert clean_sw > 0.3 * fm_clean
    # Under loss, goodput degrades monotonically but never to zero, and
    # retransmissions scale with the error rate.
    bandwidths = [results[ber][0] for ber in (0.0, 2e-5, 1e-4)]
    assert bandwidths[0] > bandwidths[1] > bandwidths[2] > 0
    assert results[1e-4][1].retransmissions > results[2e-5][1].retransmissions
