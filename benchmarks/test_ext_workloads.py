"""Extension: load-latency knees and incast fan-in for the workload layer.

The paper's §5 curves measure one stream in isolation; these benchmarks
put *sustained offered load* on the same simulated hardware and locate the
saturation knee — the highest offered load the service still delivers
(within 10%).  The layering claim becomes a capacity claim: FM 2.x's
gather interface (no assembly copy), 1 KB packets, and interleaved
handlers move the knee to a higher offered load than FM 1.x on identical
hardware, and the bursty incast pattern shows the overload policies
(queue backpressure vs shed) trading tail latency against goodput.
"""

from __future__ import annotations

import pytest

from repro.workloads.runner import Scenario, run_scenario

#: Per-client offered load points (requests/s); two clients per run.
SWEEP_RATES = (5_000.0, 10_000.0, 15_000.0, 20_000.0, 30_000.0, 45_000.0)


def sweep_point(fm_version: int, rate_rps: float) -> dict:
    return run_scenario(Scenario(
        name=f"knee-fm{fm_version}", kind="rpc", n_nodes=3,
        fm_version=fm_version, arrival="open", rate_rps=rate_rps,
        n_requests=60, req_bytes=512, resp_bytes=512, work_ns=0,
        workers=2, seed=11))["results"]


def find_knee(points: dict[float, dict]) -> float:
    """Highest per-client offered rate still delivered within 10%."""
    knee = 0.0
    for rate, results in sorted(points.items()):
        offered = 2 * rate                      # two clients
        if results["throughput_rps"] >= 0.9 * offered:
            knee = rate
    return knee


class TestLoadLatencyKnee:
    def test_fm2_knee_sits_at_higher_offered_load(self, benchmark, show):
        def sweep():
            return {
                version: {rate: sweep_point(version, rate)
                          for rate in SWEEP_RATES}
                for version in (1, 2)
            }
        curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = ["load-latency sweep (2 clients, 512B req/resp, no service "
                 "work; offered = 2x rate)",
                 f"{'rate/client':>12} {'FM1 rps':>10} {'FM1 p99us':>10} "
                 f"{'FM2 rps':>10} {'FM2 p99us':>10}"]
        for rate in SWEEP_RATES:
            fm1, fm2 = curves[1][rate], curves[2][rate]
            lines.append(
                f"{rate:>12.0f} {fm1['throughput_rps']:>10.0f} "
                f"{fm1['latency']['p99_ns'] / 1000:>10.1f} "
                f"{fm2['throughput_rps']:>10.0f} "
                f"{fm2['latency']['p99_ns'] / 1000:>10.1f}")
        knee1, knee2 = find_knee(curves[1]), find_knee(curves[2])
        lines.append(f"knee: FM1 at {knee1:.0f}/client, FM2 at {knee2:.0f}/client")
        show("\n".join(lines))
        assert knee1 > 0, "FM1 never kept up — sweep starts too high"
        assert knee2 > knee1, (
            f"FM2 knee ({knee2}) should exceed FM1 ({knee1})")
        # Past both knees, FM2 still delivers more of the offered load.
        top = SWEEP_RATES[-1]
        assert (curves[2][top]["throughput_rps"]
                > curves[1][top]["throughput_rps"])

    def test_sweep_point_reruns_bit_identical(self, benchmark):
        def pair():
            return sweep_point(2, 20_000.0), sweep_point(2, 20_000.0)
        first, second = benchmark.pedantic(pair, rounds=1, iterations=1)
        assert first == second


def incast(policy: str, queue_capacity: int) -> dict:
    # Five clients burst in phase at one server: the classic fan-in.
    return run_scenario(Scenario(
        name=f"incast-{policy}", kind="rpc", n_nodes=6, arrival="bursty",
        rate_rps=60_000.0, burst_on_ns=150_000, burst_off_ns=350_000,
        n_requests=40, req_bytes=256, resp_bytes=256, work_ns=3_000,
        workers=2, policy=policy, queue_capacity=queue_capacity,
        seed=23))["results"]


class TestIncast:
    def test_queue_absorbs_shed_drops(self, benchmark, show):
        def run():
            return incast("queue", 16), incast("shed", 4)
        queued, shedding = benchmark.pedantic(run, rounds=1, iterations=1)
        show("incast fan-in (5 clients -> 1 server, phase-aligned bursts)\n"
             f"  queue[16]: completed {queued['completed']}/{queued['sent']}"
             f" p99 {queued['latency']['p99_ns'] / 1000:.1f}us\n"
             f"  shed[4]:   completed {shedding['completed']}/"
             f"{shedding['sent']} shed {shedding['drops']['shed']}"
             f" p99 {shedding['latency']['p99_ns'] / 1000:.1f}us")
        # Backpressure delivers everything; shedding drops but bounds tails.
        assert queued["completed"] == queued["sent"] == 200
        assert queued["drops"]["total"] == 0
        assert shedding["drops"]["shed"] > 0
        assert (shedding["completed"] + shedding["drops"]["shed"]
                == shedding["sent"])
        assert (shedding["latency"]["p99_ns"]
                < queued["latency"]["p99_ns"])
        # Fan-in pressure is visible at the server queue.
        assert queued["queue_depth_max"] >= 8
