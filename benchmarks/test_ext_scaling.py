"""Extension studies (beyond the paper's two-node evaluation).

The paper's testbed was two nodes on one crossbar; these benchmarks answer
the follow-on questions its design raises, on the same substrate:

* does per-pair bandwidth hold as a crossbar fills with concurrent pairs?
  (it should: Myrinet crossbars are non-blocking and FM adds no shared
  host-side state between peers);
* what does each switch hop cost in latency?
* how do MPI collectives scale with node count, FM 1.x vs FM 2.x binding?
"""

import pytest

from conftest import run_once
from repro.bench.extensions import (
    aggregate_pair_bandwidth,
    alltoall_scaling,
    latency_vs_hops,
)
from repro.bench.report import HeadlineRow, headline_table
from repro.configs import PPRO_FM2


def test_ext_crossbar_pair_scaling(benchmark, show):
    def regenerate():
        return {n: aggregate_pair_bandwidth(PPRO_FM2, 2, n, msg_bytes=1024,
                                            n_messages=25)
                for n in (1, 2, 4)}

    results = run_once(benchmark, regenerate)
    rows = [HeadlineRow(f"{n} concurrent pair(s)", "flat",
                        f"{min(b):.1f}-{max(b):.1f} MB/s")
            for n, b in results.items()]
    show(headline_table("Extension — per-pair bandwidth on one crossbar",
                        rows))

    solo = results[1][0]
    for n, bandwidths in results.items():
        # Non-blocking crossbar + per-peer credits: no pair loses more
        # than a few percent regardless of load.
        assert min(bandwidths) > 0.9 * solo, (n, bandwidths)


def test_ext_latency_per_hop(benchmark, show):
    def regenerate():
        return latency_vs_hops(max_switches=4)

    results = run_once(benchmark, regenerate)
    show(headline_table("Extension — one-way 16 B latency vs switch hops", [
        HeadlineRow(f"{switches} switch(es)", "-", f"{latency:.2f} us")
        for switches, latency in results
    ]))

    latencies = [latency for _s, latency in results]
    # Monotone in hop count, with a sane per-hop increment (switch routing
    # + one extra wire + store slot): well under 2 us per hop.
    assert latencies == sorted(latencies)
    increments = [b - a for a, b in zip(latencies, latencies[1:])]
    assert all(0.1 < inc < 2.0 for inc in increments)


def test_ext_alltoall_scaling(benchmark, show):
    def regenerate():
        return {
            "FM 1.x": alltoall_scaling(1, node_counts=(2, 4, 8)),
            "FM 2.x": alltoall_scaling(2, node_counts=(2, 4, 8)),
        }

    results = run_once(benchmark, regenerate)
    rows = []
    for label, series in results.items():
        for n, micros in series:
            rows.append(HeadlineRow(f"alltoall {n} nodes, {label}", "-",
                                    f"{micros:.0f} us"))
    show(headline_table("Extension — MPI alltoall completion (512 B chunks)",
                        rows))

    for label, series in results.items():
        times = [t for _n, t in series]
        assert times == sorted(times), label      # more nodes, more time
    # The FM 2.x binding wins at every size, by a substantial factor.
    for (n1, t1), (n2, t2) in zip(results["FM 1.x"], results["FM 2.x"]):
        assert n1 == n2
        assert t2 < t1 / 2
