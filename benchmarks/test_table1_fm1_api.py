"""Table 1: the FM 1.1 API — conformance plus a per-primitive cost table.

The paper's table lists exactly three primitives; this benchmark exercises
each through the simulated stack and reports its host-CPU cost, which is
the quantity the paper's whole overhead argument is about.
"""

import pytest

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import SPARC_FM1
from repro.core.fm1.api import SEND4_BYTES


def test_table1_fm1_primitives(benchmark, show):
    def exercise():
        cluster = Cluster(2, SPARC_FM1, 1)
        node0, node1 = cluster.node(0), cluster.node(1)
        log = []

        def handler(fm, src, staging, nbytes):
            log.append(nbytes)
            return
            yield  # pragma: no cover

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()
        costs = {}

        def sender(node):
            buf = node.buffer(256, fill=bytes(256))
            start = node.cpu.busy_ns
            yield from node.fm.send_4(1, hid, buf.read(0, SEND4_BYTES))
            costs["FM_send_4"] = node.cpu.busy_ns - start
            start = node.cpu.busy_ns
            yield from node.fm.send(1, hid, buf, 256)
            costs["FM_send (256 B)"] = node.cpu.busy_ns - start

        def receiver(node):
            while len(log) < 2:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(500)
            start = node.cpu.busy_ns
            yield from node.fm.extract()
            costs["FM_extract (idle)"] = node.cpu.busy_ns - start

        cluster.run([sender, receiver])
        return cluster, log, costs

    cluster, log, costs = run_once(benchmark, exercise)
    show(headline_table("Table 1 — FM 1.1 primitives (simulated host-CPU cost)", [
        HeadlineRow(name, "-", f"{cost / 1000:.2f} us")
        for name, cost in costs.items()
    ]))

    # Conformance: exactly the three Table 1 primitives exist and work.
    fm = cluster.node(0).fm
    for primitive in ("send", "send_4", "extract"):
        assert callable(getattr(fm, primitive))
    assert not hasattr(fm, "begin_message")       # 2.x only
    assert sorted(log) == [SEND4_BYTES, 256]
    # The short-message fast path is cheaper than the general send.
    assert costs["FM_send_4"] < costs["FM_send (256 B)"]
    # An idle extract is a cheap poll, per the paper's polling design.
    assert costs["FM_extract (idle)"] < 2_000
