"""Extension — latency vs message size for both FM generations.

The paper reports only minimum (short-message) latency; the sweep shows
the whole profile: a flat overhead-dominated region followed by linear
growth once per-byte costs (PIO, DMA, copies) take over — and FM 2.x
beats FM 1.x at every size, with the gap widening with message length.
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_pingpong_latency_us
from repro.bench.report import HeadlineRow, headline_table
from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1

SIZES = (16, 128, 1024, 4096)


def test_ext_latency_vs_size(benchmark, show):
    def regenerate():
        return {
            "FM 1.x": [fm_pingpong_latency_us(Cluster(2, SPARC_FM1, 1),
                                              size, iterations=8)
                       for size in SIZES],
            "FM 2.x": [fm_pingpong_latency_us(Cluster(2, PPRO_FM2, 2),
                                              size, iterations=8)
                       for size in SIZES],
        }

    results = run_once(benchmark, regenerate)
    rows = []
    for label, latencies in results.items():
        for size, latency in zip(SIZES, latencies):
            rows.append(HeadlineRow(f"{label} @ {size} B", "-",
                                    f"{latency:.1f} us"))
    show(headline_table("Extension — one-way latency vs message size", rows))

    fm1, fm2 = results["FM 1.x"], results["FM 2.x"]
    # Monotone in size on both generations.
    assert fm1 == sorted(fm1)
    assert fm2 == sorted(fm2)
    # FM 2.x wins everywhere, and by more at 4 KB than at 16 B (the faster
    # PIO/DMA per-byte path compounds).
    for small, large in zip(fm2, fm1):
        assert small < large
    assert (fm1[-1] - fm2[-1]) > (fm1[0] - fm2[0])
    # The short-message anchors match the headline calibration.
    assert fm1[0] == pytest.approx(13.2, rel=0.1)
    assert fm2[0] == pytest.approx(10.1, rel=0.1)
