"""§6's bottom line: "the peak bandwidth of a high level library like
MPI-FM ... went from an initial 20% to a final 90% of the bandwidth made
available by the FM layer."

One table, both generations side by side: the fraction of FM's bandwidth
MPI extracts, per message size — the whole paper in eight rows.
"""

import pytest

from conftest import run_once
from repro.bench.mpibench import mpi_stream
from repro.bench.report import efficiency_table
from repro.bench.sweeps import FIG456_SIZES, SweepResult, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import PPRO_FM2, SPARC_FM1


def measure_generation(machine, version: int):
    fm = bandwidth_sweep(machine, version, FIG456_SIZES, n_messages=40,
                         label=f"FM {version}.x")
    mpi = SweepResult(f"MPI-FM {version}.x", list(FIG456_SIZES), [
        mpi_stream(Cluster(2, machine, version), size, 30).bandwidth_mbs
        for size in FIG456_SIZES])
    return fm, mpi


def test_summary_layering_progress(benchmark, show):
    def regenerate():
        return {
            1: measure_generation(SPARC_FM1, 1),
            2: measure_generation(PPRO_FM2, 2),
        }

    results = run_once(benchmark, regenerate)
    for version, (fm, mpi) in results.items():
        show(efficiency_table(
            f"Layering efficiency, generation {version} "
            f"(paper: {'<= 35%' if version == 1 else '70-90%'})", mpi, fm))

    fm1, mpi1 = results[1]
    fm2, mpi2 = results[2]
    eff1 = [m / f for m, f in zip(mpi1.bandwidths_mbs, fm1.bandwidths_mbs)]
    eff2 = [m / f for m, f in zip(mpi2.bandwidths_mbs, fm2.bandwidths_mbs)]

    # The abstract's before/after: ~20% -> 70-90%.
    assert min(eff1) < 0.30            # "an initial 20%"
    assert max(eff1) < 0.45            # never escapes the interface tax
    assert min(eff2) > 0.60            # "over 70% even for 16 byte messages"
    assert max(eff2) > 0.88            # "to a final 90%"
    # The redesign wins at EVERY size, by at least 2x.
    for before, after in zip(eff1, eff2):
        assert after > 2 * before
    # And absolute MPI bandwidth improved by an order of magnitude.
    assert max(mpi2.bandwidths_mbs) > 9 * max(mpi1.bandwidths_mbs)
