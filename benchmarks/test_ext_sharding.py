"""Extension: shard scaling and client-side balancer comparison.

The paper's multi-cluster outlook (§6) stops at a single server; these
benchmarks ask what the FM 2.x interface buys once a service is *sharded*
across several server nodes behind one client-facing API.  Two questions:

1. **Scaling** — does aggregate saturated capacity grow near-linearly as
   the service goes from 1 to 4 shards, and does FM 2.x keep its capacity
   lead over FM 1.x at every shard count?  (It should: each shard's
   gather-interface savings are independent, so they sum.)

2. **Placement** — under a skewed key popularity, how much does a static
   consistent-hash placement give up against a load-aware least-pending
   balancer, in throughput, tail latency, and per-shard imbalance?
"""

from __future__ import annotations

import pytest

from repro.workloads.runner import Scenario, run_scenario

#: Clients are fixed while the shard count sweeps, so offered load is
#: constant and any capacity growth is the service's, not the drivers'.
CLIENTS = 6
RATE_RPS = 80_000.0          # per client: 480k offered, saturates <4 shards
SHARD_COUNTS = (1, 2, 4)


def shard_point(fm_version: int, servers: int, balancer: str = "static",
                key_skew: float = 0.0) -> dict:
    return run_scenario(Scenario(
        name=f"shard-fm{fm_version}-s{servers}", kind="rpc",
        n_nodes=servers + CLIENTS, servers=servers, balancer=balancer,
        fm_version=fm_version, arrival="open", rate_rps=RATE_RPS,
        n_requests=60, req_bytes=256, resp_bytes=256, work_ns=0,
        workers=2, key_skew=key_skew, seed=7))["results"]


class TestShardScaling:
    def test_fm2_scales_near_linearly_and_beats_fm1(self, benchmark, show):
        def sweep():
            return {
                version: {n: shard_point(version, n) for n in SHARD_COUNTS}
                for version in (1, 2)
            }
        curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = [f"shard scaling ({CLIENTS} clients x {RATE_RPS:.0f} rps "
                 "offered, 256B req/resp, static balancer)",
                 f"{'shards':>6} {'FM1 rps':>10} {'FM2 rps':>10} "
                 f"{'FM2 p99us':>10} {'FM2 imb':>8}"]
        for n in SHARD_COUNTS:
            fm1, fm2 = curves[1][n], curves[2][n]
            imb = fm2.get("imbalance", 1.0)
            lines.append(
                f"{n:>6} {fm1['throughput_rps']:>10.0f} "
                f"{fm2['throughput_rps']:>10.0f} "
                f"{fm2['latency']['p99_ns'] / 1000:>10.1f} {imb:>8.3f}")
        speedup = (curves[2][4]["throughput_rps"]
                   / curves[2][1]["throughput_rps"])
        lines.append(f"FM2 1->4 shard speedup: {speedup:.2f}x")
        show("\n".join(lines))
        # Near-linear knee scaling: 4 shards deliver >=3x one shard.
        assert speedup >= 3.0, f"sub-linear shard scaling: {speedup:.2f}x"
        # The layering advantage survives sharding at every point.
        for n in SHARD_COUNTS:
            assert (curves[2][n]["throughput_rps"]
                    > curves[1][n]["throughput_rps"])

    def test_sweep_point_reruns_bit_identical(self, benchmark):
        def pair():
            return shard_point(2, 4), shard_point(2, 4)
        first, second = benchmark.pedantic(pair, rounds=1, iterations=1)
        assert first == second


class TestBalancerComparison:
    def test_skewed_keys_punish_static_placement(self, benchmark, show):
        # Zipf(1.2) key popularity: consistent hashing pins the hot keys
        # to whichever shards own them; least-pending just routes around
        # the heat.  Measure the cost of obliviousness.
        def run():
            return {name: shard_point(2, 4, balancer=name, key_skew=1.2)
                    for name in ("static", "round_robin", "least_pending")}
        results = benchmark.pedantic(run, rounds=1, iterations=1)
        lines = ["balancers under Zipf(1.2) keys, 4 shards",
                 f"{'balancer':>14} {'rps':>10} {'p99us':>8} {'imb':>8}"]
        for name, r in results.items():
            lines.append(f"{name:>14} {r['throughput_rps']:>10.0f} "
                         f"{r['latency']['p99_ns'] / 1000:>8.1f} "
                         f"{r['imbalance']:>8.3f}")
        show("\n".join(lines))
        static, least = results["static"], results["least_pending"]
        # The imbalance penalty is measurable and it costs throughput
        # and tail latency, not just aesthetics.
        assert static["imbalance"] > least["imbalance"]
        assert static["throughput_rps"] < least["throughput_rps"]
        assert static["latency"]["p99_ns"] > least["latency"]["p99_ns"]
        # Load-aware routing keeps shards within a few percent of even.
        assert least["imbalance"] < 1.15

    def test_uniform_keys_leave_little_on_the_table(self, benchmark, show):
        # Without skew the static ring is already close to even: the gap
        # to least-pending shrinks to noise-level percentages.
        def run():
            return (shard_point(2, 4, balancer="static"),
                    shard_point(2, 4, balancer="least_pending"))
        static, least = benchmark.pedantic(run, rounds=1, iterations=1)
        show(f"uniform keys: static {static['throughput_rps']:.0f} rps "
             f"(imb {static['imbalance']:.3f}) vs least_pending "
             f"{least['throughput_rps']:.0f} rps "
             f"(imb {least['imbalance']:.3f})")
        assert static["throughput_rps"] > 0.8 * least["throughput_rps"]
