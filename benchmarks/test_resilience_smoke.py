"""Resilience smoke test — wired into tier-1 via pyproject testpaths.

A miniature of the resilience sweep: one short reliable transfer through
a planned drop window (retransmissions happen, everything arrives) and
one FM run that fails loudly and diagnosably under a corruption burst.
Fast by construction, so it runs with the regular test suite rather than
the benchmark tier.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.core.common import FmTransportError
from repro.ext import SwReliablePair
from repro.faults import FaultPlan, LinkFault

pytestmark = pytest.mark.fast


class TestResilienceSmoke:
    def test_swrel_recovers_through_a_drop_window(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        observer = cluster.observe()
        injector = cluster.inject_faults(FaultPlan(seed=2, episodes=(
            LinkFault(link="link:h0->*", start_ns=0, end_ns=200_000,
                      drop_rate=0.5),)))
        pair = SwReliablePair(cluster, 0, 1)
        payloads = [bytes([i]) * 1200 for i in range(4)]
        got = []
        sender_done = [False]

        def sender(node):
            for payload in payloads:
                yield from pair.send_message(payload)
            sender_done[0] = True

        def receiver(node):
            while (len(got) < len(payloads) or not sender_done[0]
                   or pair.outstanding):
                messages = yield from pair.deliver()
                got.extend(messages)
                if not messages:
                    yield node.env.timeout(300)

        cluster.run([sender, receiver])
        assert got == payloads
        assert pair.retransmissions > 0
        assert injector.counters["link.drop"] > 0
        assert any(s.layer == "fault" for s in observer.spans)

    def test_fm_fails_loud_under_burst(self):
        cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
        cluster.inject_faults(FaultPlan(seed=2, episodes=(
            LinkFault(link="link:h0->*", ber=1e-3),)))

        def handler(fm, stream, src):
            yield from stream.receive_bytes(stream.msg_bytes)

        hid = {n.fm.register_handler(handler) for n in cluster.nodes}.pop()

        def sender(node):
            buf = node.buffer(1500)
            for _ in range(20):
                yield from node.fm.send_buffer(1, hid, buf, 1500)

        def receiver(node):
            while True:
                got = yield from node.fm.extract()
                if not got:
                    yield node.env.timeout(300)

        with pytest.raises(FmTransportError) as exc_info:
            cluster.run([sender, receiver], until_ns=1_000_000_000)
        assert "detected at node 1" in exc_info.value.diagnose()
