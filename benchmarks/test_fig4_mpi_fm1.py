"""Figure 4: the initial MPI-FM over FM 1.x — the failure that motivated
FM 2.x.  (a) absolute bandwidth vs raw FM 1.x; (b) efficiency (% of FM).

Paper claims reproduced: MPI-FM 1.x "fail[s] to deliver more than 35% of
the underlying FM bandwidth" (abstract: "only about 20%"), because of the
interface copies (send assembly; staging -> pool -> user on receive) and
the lack of receiver pacing (pool overruns force spill copies).
"""

import pytest

from conftest import run_once
from repro.bench.mpibench import mpi_stream
from repro.bench.report import curve_table, efficiency_table
from repro.bench.sweeps import FIG456_SIZES, SweepResult, bandwidth_sweep
from repro.cluster import Cluster
from repro.configs import SPARC_FM1


def test_fig4_mpi_fm1_efficiency(benchmark, show):
    def regenerate():
        fm = bandwidth_sweep(SPARC_FM1, 1, FIG456_SIZES, n_messages=40,
                             label="FM 1.x")
        mpi_bandwidths = []
        for size in FIG456_SIZES:
            cluster = Cluster(2, SPARC_FM1, 1)
            mpi_bandwidths.append(
                mpi_stream(cluster, size, n_messages=30).bandwidth_mbs)
        mpi = SweepResult("MPI-FM 1.x", list(FIG456_SIZES), mpi_bandwidths)
        return fm, mpi

    fm, mpi = run_once(benchmark, regenerate)
    show(curve_table("Figure 4(a) — MPI-FM 1.x vs FM 1.x (absolute)",
                     [fm, mpi]))
    show(efficiency_table("Figure 4(b) — MPI-FM 1.x efficiency", mpi, fm))

    efficiencies = [m / f for m, f in zip(mpi.bandwidths_mbs, fm.bandwidths_mbs)]
    # The paper's bands: never above ~35-45%, around 20% for short messages.
    assert max(efficiencies) < 0.45
    assert 0.15 <= efficiencies[0] <= 0.35
    # MPI-FM 1.x peak bandwidth is a small multiple of megabytes/second.
    assert mpi.peak_mbs < 8.0
    # Efficiency improves somewhat with size (as in the figure) ...
    assert efficiencies[-1] > efficiencies[0]
    # ... but the interface tax never comes close to being amortised.
    assert efficiencies[-1] < 0.5
