"""Observability smoke test — wired into tier-1 via pyproject testpaths.

Runs a short FM2 workload with full observability on, validates the
exported Perfetto trace against the schema subset, checks the acceptance
floor of >= 5 distinct component tracks, and drives the breakdown-report
CLI end to end.  Fast by construction (one small simulated exchange), so
it runs with the regular test suite rather than the benchmark tier.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.journey import packet_journey_detail
from repro.configs import PPRO_FM2
from repro.obs.export import (
    distinct_tracks,
    export_trace,
    validate_trace_events,
)
from repro.obs.observer import Observer
from repro.obs.report import main as report_main

pytestmark = pytest.mark.fast


class TestObservabilitySmoke:
    def test_full_obs_run_exports_valid_trace(self, tmp_path):
        observer = Observer()
        journey, cluster = packet_journey_detail(PPRO_FM2, 2, 64,
                                                 observer=observer)
        assert observer.spans, "no spans emitted with observability on"
        path = export_trace(observer, tmp_path / "smoke.json")
        trace = json.loads(path.read_text())
        validate_trace_events(trace)
        assert distinct_tracks(trace) >= 5

    def test_metrics_populated(self):
        observer = Observer()
        packet_journey_detail(PPRO_FM2, 2, 64, observer=observer)
        (latency,) = observer.metrics.histograms("packet.latency_ns")
        assert latency.count == 1
        assert observer.metrics.histograms("packet.stage")
        assert observer.metrics.copy_bytes_by_label()

    def test_report_cli_exits_zero(self, capsys):
        assert report_main(["journey-fm2"]) == 0
        out = capsys.readouterr().out
        assert "breakdown report" in out
        assert "TOTAL" in out
