"""Meta-benchmark: the simulator's own speed (events/sec, packets/sec).

Unlike the figure benchmarks (one deterministic simulation run each),
these use pytest-benchmark's statistical machinery properly — multiple
rounds of the same deterministic workload — to track the *wall-clock*
cost of simulating, which bounds how large an experiment the library can
host.  Regressions here make every other benchmark slower.

The speed gates are **relative**: each workload is compared against a
trivial pure-Python calibration loop timed on the same machine in the same
session, so a slow CI runner slows both sides and the ratio holds.  The
absolute numbers (and the tracked history) live in ``BENCH_selfperf.json``,
regenerated here via :mod:`repro.bench.selfperf`.
"""

import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.bench.selfperf import (
    build_document,
    kernel_workload,
    measure,
    partitioned_parallel_workload,
    partitioned_serial_workload,
    stack_obs_workload,
    stack_workload,
    write_selfperf,
)


def _calibration_seconds() -> float:
    """Wall time of a trivial 10^6-iteration pure-Python loop (min of 3).

    This is the machine-speed yardstick: every workload gate below is a
    multiple of this, so the assertions measure *simulator efficiency*, not
    the runner's absolute speed.
    """
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc += i
        best = min(best, perf_counter() - t0)
    assert acc == 499999500000
    return best


def test_simkernel_event_throughput(benchmark):
    simulated_ns, events = benchmark.pedantic(
        kernel_workload, rounds=5, iterations=1, warmup_rounds=1)
    assert simulated_ns > 0   # simulated time advanced
    assert events > 10_000    # the workload actually churned the kernel

    # ~12k scheduled / ~36k processed events must cost no more than ~2x a
    # million trivial loop iterations — i.e. a few hundred ns per event.
    # (Post-overhaul the ratio is ~0.4; the baseline kernel sat near 0.9.)
    assert benchmark.stats.stats.mean < 2.0 * _calibration_seconds()


def test_full_stack_simulation_throughput(benchmark):
    simulated_ns, packets = benchmark.pedantic(
        stack_workload, rounds=3, iterations=1, warmup_rounds=1)
    assert simulated_ns > 0
    assert packets >= 60      # at least one wire packet per message

    # One bandwidth point (60 messages, full FM2 protocol, 2 nodes) should
    # cost no more than ~3x the calibration loop.
    assert benchmark.stats.stats.mean < 3.0 * _calibration_seconds()


def test_observability_overhead_bounded(benchmark):
    """Full observability may cost wall time, but only a bounded factor.

    The obs-on stack workload (identical traffic, observer attached) is
    gated machine-relative like everything else here; separately, its min
    wall time must stay within 4x the obs-off run measured in the same
    session — recording spans/metrics must never dominate simulation.
    """
    simulated_ns, packets = benchmark.pedantic(
        stack_obs_workload, rounds=3, iterations=1, warmup_rounds=1)
    assert simulated_ns > 0
    assert packets >= 60
    assert benchmark.stats.stats.mean < 6.0 * _calibration_seconds()

    best_plain = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        plain_ns, _count = stack_workload()
        best_plain = min(best_plain, perf_counter() - t0)
    # Zero *simulated* cost is exact; wall cost is allowed but bounded.
    assert plain_ns == simulated_ns
    assert benchmark.stats.stats.min < 4.0 * best_plain


def test_partitioned_scaling():
    """The partitioned engine must actually scale — where it can.

    Wall-clock speedup of 4 worker processes over the serial runner is
    bounded above by the machine's core count, so the gate is
    machine-relative: on >= 4 cpus (the CI runners) the partitioned run
    must be at least 2x faster; on smaller boxes (where parallel wall
    time is serial compute plus barrier overhead on one core) we only
    require that the engine completes and simulates the same scenario.
    """
    best_serial, best_parallel = float("inf"), float("inf")
    sim_serial = sim_parallel = 0
    for _ in range(2):
        t0 = perf_counter()
        sim_serial, _events = partitioned_serial_workload()
        best_serial = min(best_serial, perf_counter() - t0)
    for _ in range(2):
        t0 = perf_counter()
        sim_parallel, _events = partitioned_parallel_workload()
        best_parallel = min(best_parallel, perf_counter() - t0)
    # Same scenario, same simulated end time — partition-count invariance.
    assert sim_serial == sim_parallel > 0
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert best_serial / best_parallel >= 2.0, (
            f"partitioned run only {best_serial / best_parallel:.2f}x "
            f"faster on {cpus} cpus")


def test_selfperf_baseline_regenerated():
    """Regenerate BENCH_selfperf.json (the tracked self-performance file).

    Runs the same harness the CLI uses and rewrites the repo-root artifact,
    so a benchmarks run always leaves a fresh ``current`` section behind.
    Only determinism is asserted here — the committed file, not this test,
    records the speedup claim.
    """
    current = measure(repeats=3)
    document = build_document(current)
    # The workloads are deterministic: counts must match the frozen baseline.
    assert current["kernel"]["events"] == document["baseline"]["kernel"]["events"]
    assert current["stack"]["packets"] == document["baseline"]["stack"]["packets"]

    root = Path(__file__).resolve().parent.parent
    path = write_selfperf(root / "BENCH_selfperf.json", document=document)
    assert path.exists()
