"""Meta-benchmark: the simulator's own speed (events/sec, packets/sec).

Unlike the figure benchmarks (one deterministic simulation run each),
these use pytest-benchmark's statistical machinery properly — multiple
rounds of the same deterministic workload — to track the *wall-clock*
cost of simulating, which bounds how large an experiment the library can
host.  Regressions here make every other benchmark slower.
"""

import pytest

from conftest import run_once
from repro.bench.microbench import fm_stream
from repro.cluster import Cluster
from repro.configs import PPRO_FM2
from repro.simkernel import Environment, Store


def kernel_workload():
    """A pure-kernel churn: producer/consumer chains, ~30k events."""
    env = Environment()
    stores = [Store(env, capacity=4) for _ in range(4)]

    def producer(env):
        for i in range(1000):
            yield env.timeout(5)
            yield stores[0].put(i)

    def relay(env, src, dst):
        while True:
            item = yield src.get()
            yield env.timeout(3)
            yield dst.put(item)

    def consumer(env):
        for _ in range(1000):
            yield stores[-1].get()

    env.process(producer(env))
    for index in range(len(stores) - 1):
        env.process(relay(env, stores[index], stores[index + 1]))
    done = env.process(consumer(env))
    env.run(until=done)
    return env.now


def stack_workload():
    """A full-stack churn: 60 x 1 KB messages through FM 2.x."""
    cluster = Cluster(2, machine=PPRO_FM2, fm_version=2)
    return fm_stream(cluster, 1024, n_messages=60).bandwidth_mbs


def test_simkernel_event_throughput(benchmark):
    result = benchmark.pedantic(kernel_workload, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert result > 0   # simulated time advanced

    # The kernel must stay fast enough that figure sweeps are interactive:
    # this ~30k-event workload should run well under a second.
    assert benchmark.stats.stats.mean < 1.0


def test_full_stack_simulation_throughput(benchmark):
    bandwidth = benchmark.pedantic(stack_workload, rounds=3, iterations=1,
                                   warmup_rounds=1)
    assert bandwidth == pytest.approx(65, rel=0.2)
    # One bandwidth point (60 messages, ~180 packets, full protocol) should
    # simulate in well under two seconds.
    assert benchmark.stats.stats.mean < 2.0
