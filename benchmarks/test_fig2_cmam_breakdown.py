"""Figure 2: breakdown of CM-5 Active Messages overhead by component
(base / buffer management / in-order delivery / fault tolerance), for the
source, destination and total, under the finite- and indefinite-sequence
multi-packet protocols (16-word messages, 4-word packets).

Paper anchor reproduced exactly: 216 of 397 total cycles pay for the
guarantees (buffer mgmt 148, in-order 21, fault tolerance 47), i.e. 50-70%
of messaging cost is the software bridging network/application semantics.
"""

from conftest import run_once
from repro.bench.report import bar_table
from repro.cmam import COMPONENTS, CmamCostModel, SequenceKind, Side

GROUPS = [
    ("finite/src", SequenceKind.FINITE, Side.SRC),
    ("finite/dest", SequenceKind.FINITE, Side.DEST),
    ("finite/total", SequenceKind.FINITE, Side.TOTAL),
    ("indef/total", SequenceKind.INDEFINITE, Side.TOTAL),
    ("indef/dest", SequenceKind.INDEFINITE, Side.DEST),
    ("indef/src", SequenceKind.INDEFINITE, Side.SRC),
]


def test_fig2_cmam_overhead_breakdown(benchmark, show):
    def regenerate():
        model = CmamCostModel(message_words=16, packet_words=4)
        values = {}
        for label, seq, side in GROUPS:
            for component, cycles in model.breakdown(side, seq).items():
                values[(component, label)] = float(cycles)
        return model, values

    model, values = run_once(benchmark, regenerate)
    show(bar_table("Figure 2 — CMAM overhead breakdown (cycles)",
                   [g for g, _s, _d in GROUPS], list(COMPONENTS), values))

    # Anchors from the paper's text.
    assert model.total() == 397
    assert model.cycles("buffer_mgmt") == 148
    assert model.cycles("in_order") == 21
    assert model.cycles("fault_tolerance") == 47
    assert model.guarantee_cycles() == 216
    # Figure shape: indefinite-sequence bars are taller, dest > src,
    # and the guarantee share sits in the 50-70% band for both protocols.
    assert model.total(sequence=SequenceKind.INDEFINITE) > model.total()
    assert model.total(Side.DEST) > model.total(Side.SRC)
    for seq in SequenceKind:
        assert 0.50 <= model.guarantee_fraction(sequence=seq) <= 0.70
