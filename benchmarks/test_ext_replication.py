"""Extension: availability under faults with replicated sharded services.

The sharding benchmarks measure capacity; these measure *survival*.  A
`NicStall` episode on one shard's host blacks out that shard's key range
for its whole window — unless each key also lives on a backup shard and
clients fail over.  Two questions:

1. **Replication** — during a 3 ms NIC stall on one of four shards, what
   availability does the unreplicated service deliver inside the fault
   window, and what does R=2 with supervised failover recover?

2. **Detection latency** — how fast the supervisor notices the sick
   shard is set by its probe interval.  Sweeping it shows the trade:
   slow probes leave the stale route in the health map longer, so more
   requests pay the full failover timeout before completing elsewhere.
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.runner import PRESET_PLANS, PRESETS, run_scenario

REPLICATED = PRESETS["rpc-replicated-failover"]
BLACKOUT = PRESETS["rpc-sharded-blackout"]
PLAN = PRESET_PLANS["rpc-replicated-failover"]
FAULT_START_NS = PLAN.episodes[0].start_ns

PROBE_INTERVALS_NS = (50_000, 150_000, 600_000)


def fault_availability(report: dict) -> float:
    return report["fault_windows"]["episodes"][0]["availability"]


def detection_latency_ns(report: dict) -> int:
    downs = [t["t_ns"] for t in report["replication"]["health_transitions"]
             if t["state"] == "down"]
    return min(downs) - FAULT_START_NS


class TestAvailabilityDuringFault:
    def test_replication_recovers_the_blackout(self, benchmark, show):
        def pair():
            return (run_scenario(REPLICATED, plan=PLAN),
                    run_scenario(BLACKOUT, plan=PLAN))
        replicated, blackout = benchmark.pedantic(
            pair, rounds=1, iterations=1)
        rep_ep = replicated["fault_windows"]["episodes"][0]
        bo_ep = blackout["fault_windows"]["episodes"][0]
        lines = ["availability inside the 3ms NicStall window "
                 "(4 shards, shard 1 stalled)",
                 f"{'service':>14} {'avail':>7} {'goodput':>9} "
                 + " ".join(f"{'sh' + str(i):>6}" for i in range(4))]
        for name, ep in (("R=1", bo_ep), ("R=2", rep_ep)):
            shards = " ".join(
                f"{(s['availability'] if s['availability'] is not None else 1.0):>6.2f}"
                for s in ep["shards"])
            lines.append(f"{name:>14} {ep['availability']:>7.4f} "
                         f"{ep['goodput_mbs']:>7.2f}MB {shards}")
        rep = replicated["replication"]
        lines.append(
            f"R=2 control plane: {rep['failovers']} failovers, "
            f"detection {detection_latency_ns(replicated) / 1000:.0f}us "
            f"after fault start, {rep['probes']['sent']} probes")
        show("\n".join(lines))
        # The headline: replication keeps the window >= 99% available
        # while the unreplicated control blacks out shard 1's keys.
        assert fault_availability(replicated) >= 0.99
        assert fault_availability(blackout) < 0.9
        assert bo_ep["shards"][1]["availability"] < 0.5
        # Same totals either way: nothing is silently dropped.
        for report in (replicated, blackout):
            r = report["results"]
            assert r["completed"] + r["drops"]["total"] == r["sent"]

    def test_replicated_fault_run_reruns_bit_identical(self, benchmark):
        def pair():
            return (run_scenario(REPLICATED, plan=PLAN),
                    run_scenario(REPLICATED, plan=PLAN))
        first, second = benchmark.pedantic(pair, rounds=1, iterations=1)
        assert first == second


class TestProbeIntervalSweep:
    def test_slower_probes_cost_more_failovers(self, benchmark, show):
        def sweep():
            return {
                interval: run_scenario(
                    replace(REPLICATED, probe_interval_ns=interval),
                    plan=PLAN)
                for interval in PROBE_INTERVALS_NS
            }
        curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = ["probe interval sweep (R=2, 3ms stall on shard 1)",
                 f"{'interval_us':>12} {'detect_us':>10} {'avail':>7} "
                 f"{'failovers':>10}"]
        for interval in PROBE_INTERVALS_NS:
            report = curves[interval]
            lines.append(
                f"{interval / 1000:>12.0f} "
                f"{detection_latency_ns(report) / 1000:>10.0f} "
                f"{fault_availability(report):>7.4f} "
                f"{report['replication']['failovers']:>10}")
        show("\n".join(lines))
        fastest = curves[PROBE_INTERVALS_NS[0]]
        slowest = curves[PROBE_INTERVALS_NS[-1]]
        # Detection latency tracks the probe interval...
        assert (detection_latency_ns(fastest)
                <= detection_latency_ns(slowest))
        # ...and a stale health map makes more requests pay the failover
        # timeout before landing on the backup.
        assert (fastest["replication"]["failovers"]
                <= slowest["replication"]["failovers"])
        # Availability survives even slow detection: clients' own
        # failover clocks are the backstop, probes only cheapen it.
        for report in curves.values():
            assert fault_availability(report) >= 0.95
