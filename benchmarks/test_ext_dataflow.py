"""Extension — streaming dataflow: placement and bounded-queue sweeps.

The paper's layering argument made flow control a *property of the
messaging layer* (credits, §4.1) rather than of every application.  The
dataflow engine leans on exactly that: stage queues are bounded, and when
one fills, FM's own credit ledger stalls the sender.  Two sweeps probe
what that buys a continuous pipeline:

* **placement** — the same scatter/gather pipeline computed on one node
  per stage (``spread``) vs folded onto the source nodes (``colocate``).
  With per-record service demand on the lanes, spread wins on raw
  throughput (lanes own their CPUs) and the gap measures what the wire
  costs relative to lost parallelism.
* **bounded-queue depth** — throughput vs per-stage queue capacity.  The
  capacity of the *bottleneck stage* sets throughput; queue depth only
  chooses where records wait.  Deeper queues buy nothing (throughput is
  flat within a few percent, zero drops at every depth) and cost tail
  latency — classic buffer bloat, reproduced on simulated hardware.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.report import HeadlineRow, headline_table
from repro.workloads.runner import Scenario, run_scenario


def scatter_gather(**overrides):
    """A saturating scatter/gather pipeline: offered load far above lane
    capacity, so throughput reads back the pipeline's actual capacity."""
    spec = dict(
        name="ext-dataflow", kind="pipeline", pipeline="scatter_gather",
        arrival="open-fixed", n_nodes=7, n_sources=2, branches=4,
        rate_rps=2_000_000.0, n_requests=400, req_bytes=64,
        work_ns=4_000, n_keys=64, queue_capacity=16,
    )
    spec.update(overrides)
    return run_scenario(Scenario(**spec))["results"]


def test_ext_dataflow_placement_throughput(benchmark, show):
    def regenerate():
        return {
            "spread": scatter_gather(),
            "colocate": scatter_gather(stage_placement="colocate",
                                       n_nodes=2),
        }

    results = run_once(benchmark, regenerate)
    show(headline_table(
        "Extension — dataflow throughput vs stage placement", [
            HeadlineRow(f"{placement} ({r['throughput_rps'] / 1e3:.0f}k "
                        "records/s)", "-",
                        f"p99 {r['latency']['p99_ns'] / 1e3:.0f} us")
            for placement, r in results.items()
        ]))

    spread, coloc = results["spread"], results["colocate"]
    for r in results.values():
        assert r["conservation"]["ok"]
        assert r["records"]["dropped"] == 0
    # Compute-bound lanes: one node per stage beats 4 lanes folded onto
    # 2 source nodes by well over 1.5x (measured ~1.8x).
    assert spread["throughput_rps"] > 1.5 * coloc["throughput_rps"]
    # What colocation buys instead: most hops never touch the fabric.
    assert any(e["local"] for e in coloc["edges"])
    assert all(not e["local"] for e in spread["edges"])


def test_ext_dataflow_queue_depth_throughput(benchmark, show):
    depths = (1, 2, 16, 64)

    def regenerate():
        return {depth: scatter_gather(queue_capacity=depth)
                for depth in depths}

    results = run_once(benchmark, regenerate)
    show(headline_table(
        "Extension — dataflow throughput vs bounded-queue depth", [
            HeadlineRow(f"capacity {depth:>2} "
                        f"({r['throughput_rps'] / 1e3:.0f}k records/s)",
                        "flat",
                        f"p99 {r['latency']['p99_ns'] / 1e3:.0f} us")
            for depth, r in results.items()
        ]))

    throughputs = [r["throughput_rps"] for r in results.values()]
    # Zero drops at every depth: backpressure, not buffering, is what
    # keeps records safe — even a depth-1 queue loses nothing.
    for r in results.values():
        assert r["records"]["dropped"] == 0
        assert r["conservation"]["ok"]
    # The bottleneck lane's service rate sets throughput; queue depth
    # only chooses where records wait (flat within a few percent).
    assert max(throughputs) < 1.1 * min(throughputs)
    # What deep queues do cost: records queue longer ahead of the
    # bottleneck — buffer bloat shows up in the delivered tail.
    assert (results[64]["latency"]["p99_ns"]
            > 1.2 * results[2]["latency"]["p99_ns"])
    # Backpressure is doing the pacing at every depth.
    assert all(r["credit_stalls"] > 0 for r in results.values())
